package core

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/msg"
	"repro/internal/obs"
	"repro/internal/proto"
	"repro/internal/sim"
	"repro/internal/stats"
)

// l2StateName names the directory states for the event log.
func l2StateName(s int) string {
	switch s {
	case L2StateS:
		return "S"
	case L2StateM:
		return "M"
	default:
		return "I"
	}
}

// Transaction phases for the per-line FtDirCMP L2 MSHR.
const (
	phaseIdle = iota
	// phaseWaitUnblock: a response or forward went to an L1; waiting for
	// its Unblock/UnblockEx (lost-unblock timer armed).
	phaseWaitUnblock
	// phaseWaitWbData: WbAck sent; waiting for WbData/WbNoData/WbCancel
	// (lost-unblock timer armed, pings with WbPing).
	phaseWaitWbData
	// phaseWaitAckBD: we received owned data (WbData or recall) and sent
	// AckO; waiting for the backup holder's AckBD.
	phaseWaitAckBD
	// phaseWaitMemData: GetX issued to memory (lost-request timer armed).
	phaseWaitMemData
	// phaseWaitRecall: eviction collecting the owner's data and sharers'
	// acks (recall timer armed).
	phaseWaitRecall
	// phaseWaitMemWbAck: Put issued to memory (lost-request timer armed).
	phaseWaitMemWbAck
	// phaseWaitMemAckO: WbData sent to memory; we hold the backup until
	// memory's AckO arrives (backup timer armed).
	phaseWaitMemAckO
)

// Response kinds recorded so a reissued request can be answered again.
const (
	respNone = iota
	// respData: Data sent from the L2's own copy (no ownership moved).
	respData
	// respDataEx: DataEx sent from the L2's own copy (ownership moved;
	// the line payload is retained as the in-chip backup).
	respDataEx
	// respNoPayload: dataless upgrade grant to the current owner.
	respNoPayload
	// respFwd: request forwarded to the owning L1.
	respFwd
	// respWbAck: WbAck sent for a Put.
	respWbAck
)

// pendingReq is a deferred or in-service L1 request.
type pendingReq struct {
	typ  msg.Type
	from msg.NodeID
	tid  msg.TID
	sn   msg.SerialNumber
}

// extBlock marks an externally blocked line (§3.1.1): the UnblockEx+AckO
// went to memory and until memory's AckBD arrives the line must not be
// written back off-chip. Internal (L1↔L1↔L2) transfers stay allowed.
type extBlock struct {
	owner *L2
	addr  msg.Addr

	tid     msg.TID
	sn      msg.SerialNumber
	timer   sim.Timer
	onClear []func()
}

func resetExtBlock(eb *extBlock) {
	eb.timer.Stop()
	*eb = extBlock{timer: eb.timer, onClear: eb.onClear[:0]}
}

// l2Trans is the per-line transaction record.
//
// owner/addr are back-references set at Alloc so the record itself can be
// the argument of a package-level timer callback (Timer.StartCall); arming a
// timeout then allocates nothing.
type l2Trans struct {
	owner *L2
	addr  msg.Addr

	phase int
	evict bool
	req   pendingReq
	queue []pendingReq

	// tid drives the current service: the in-service request's TID, or a
	// self-minted one for directory-initiated evictions.
	tid msg.TID

	// Resend record for reissued requests.
	respKind      int
	fwdDest       msg.NodeID
	invTargets    []msg.NodeID
	ackCount      int
	respMigratory bool
	respFwdType   msg.Type
	wantData      bool

	// Unblock bookkeeping for responses that carry ownership out of L2.
	unblockReceived bool
	backupCleared   bool
	sentDataExTo    msg.NodeID
	owedMem         bool

	// AckO we sent for owned data we received (WbData or recall).
	ackOTo msg.NodeID
	ackOSN msg.SerialNumber

	// Memory-facing request state. memTyp is the request the memTimer
	// reissues on firing (GetX fetch or Put).
	memSN       msg.SerialNumber
	memTyp      msg.Type
	memAttempts int

	// Recall bookkeeping.
	recallSN       msg.SerialNumber
	recallAttempts int
	pendingAcks    int
	needData       bool
	gotData        bool
	recalled       msg.Payload
	recallFrom     msg.NodeID
	afterAckBD     func()

	// Parked memory fetch.
	fetched      msg.Payload
	fetchedDirty bool

	// Eviction writeback data between frame release and WbData to memory.
	wbPayload msg.Payload
	wbDirty   bool
	wbValid   bool

	onDone []func()

	unblockTimer sim.Timer
	memTimer     sim.Timer
	ackBDTimer   sim.Timer
	backupTimer  sim.Timer
	recallTimer  sim.Timer
}

// timersOff stops every armed timer on the transaction.
func (t *l2Trans) timersOff() {
	t.unblockTimer.Stop()
	t.memTimer.Stop()
	t.ackBDTimer.Stop()
	t.backupTimer.Stop()
	t.recallTimer.Stop()
}

func resetL2Trans(t *l2Trans) {
	t.timersOff()
	*t = l2Trans{
		queue:        t.queue[:0],
		invTargets:   t.invTargets[:0],
		unblockTimer: t.unblockTimer,
		memTimer:     t.memTimer,
		ackBDTimer:   t.ackBDTimer,
		backupTimer:  t.backupTimer,
		recallTimer:  t.recallTimer,
	}
}

// migInfo is the migratory-sharing detector state (identical to DirCMP's).
type migInfo struct {
	lastReader  msg.NodeID
	lastWasRead bool
	migratory   bool
}

// L2 is an FtDirCMP shared-L2 bank plus its slice of the directory.
type L2 struct {
	id     msg.NodeID
	topo   proto.Topology
	params proto.Params
	engine *sim.Engine
	net    proto.Sender
	run    *stats.Run

	array  *cache.Array
	trans  *cache.Table[l2Trans]
	ext    *cache.Table[extBlock]
	mig    map[msg.Addr]migInfo
	serial *msg.SerialSpace
	tids   proto.TIDSource
	obs    *obs.Recorder

	// domains is the structural-fault failure detector (nil without
	// structural faults); halted is set when this tile dies.
	domains *proto.Domains
	halted  bool

	// victimFilter is the eviction predicate passed to cache.Array.Victim,
	// built once so installing a fetched line does not allocate a closure.
	victimFilter func(*cache.Line) bool
}

var _ proto.Inspectable = (*L2)(nil)

// NewL2 builds an FtDirCMP L2 bank controller.
func NewL2(id msg.NodeID, topo proto.Topology, params proto.Params, engine *sim.Engine,
	net proto.Sender, run *stats.Run) (*L2, error) {
	arr, err := cache.NewArray(params.L2Size, params.L2Ways, params.LineSize)
	if err != nil {
		return nil, err
	}
	l := &L2{
		id:     id,
		topo:   topo,
		params: params,
		engine: engine,
		net:    net,
		run:    run,
		array:  arr,
		trans:  cache.NewTableReset[l2Trans](0, resetL2Trans),
		ext:    cache.NewTableReset[extBlock](0, resetExtBlock),
		mig:    make(map[msg.Addr]migInfo),
		serial: msg.NewSerialSpace(params.SerialBits),
		tids:   proto.NewTIDSource(id),
	}
	l.victimFilter = func(c *cache.Line) bool {
		return l.trans.Get(c.Addr) == nil && l.ext.Get(c.Addr) == nil
	}
	return l, nil
}

// NodeID implements proto.Inspectable.
func (l *L2) NodeID() msg.NodeID { return l.id }

// SetObserver attaches the structured event recorder (see internal/obs).
func (l *L2) SetObserver(o *obs.Recorder) { l.obs = o }

// SetDomains attaches the structural-fault domain tracker.
func (l *L2) SetDomains(d *proto.Domains) { l.domains = d }

// Halt permanently silences this bank (its tile died): all timers stop and
// every future message or callback is ignored.
func (l *L2) Halt() {
	l.halted = true
	l.trans.ForEach(func(_ msg.Addr, t *l2Trans) { t.timersOff() })
	l.ext.ForEach(func(_ msg.Addr, eb *extBlock) { eb.timer.Stop() })
}

// Halted reports whether the tile died.
func (l *L2) Halted() bool { return l.halted }

// deadParty checks the transaction's counterparts against the failure
// detector: the in-service requester, the forward destination, and every
// invalidation target. Declaring any of them dead parks the transaction
// for the reconstruction flush.
func (l *L2) deadParty(t *l2Trans) bool {
	if l.domains == nil {
		return false
	}
	if l.domains.MaybeDeclareDead(t.req.from) {
		return true
	}
	if t.fwdDest != 0 && l.domains.MaybeDeclareDead(t.fwdDest) {
		return true
	}
	for _, dst := range t.invTargets {
		if l.domains.MaybeDeclareDead(dst) {
			return true
		}
	}
	return false
}

// Quiesced reports whether no transaction or external block is live.
func (l *L2) Quiesced() bool { return l.trans.Len() == 0 && l.ext.Len() == 0 }

// Handle processes a delivered network message.
func (l *L2) Handle(m *msg.Message) {
	if l.halted || l.domains.Declared(m.Src) {
		// Dead tiles process nothing; survivors discard stragglers from
		// declared-dead nodes so post-reconstruction state stays clean.
		return
	}
	switch m.Type {
	case msg.GetS, msg.GetX, msg.Put:
		l.handleRequest(m)
	case msg.Unblock, msg.UnblockEx:
		l.handleUnblock(m)
	case msg.WbData:
		l.handleWbData(m)
	case msg.WbNoData, msg.WbCancel:
		l.handleWbNoData(m)
	case msg.Data, msg.DataEx:
		l.handleData(m)
	case msg.Ack:
		l.handleRecallAck(m)
	case msg.WbAck:
		l.handleMemWbAck(m)
	case msg.AckO:
		l.handleAckO(m)
	case msg.AckBD:
		l.handleAckBD(m)
	case msg.UnblockPing:
		l.handleUnblockPing(m)
	case msg.WbPing:
		l.handleMemWbPing(m)
	case msg.OwnershipPing:
		l.handleOwnershipPing(m)
	case msg.NackO:
		l.handleNackO(m)
	default:
		protocolPanic("L2 %d received unexpected %v", l.id, m)
	}
}

// handleRequest starts, queues, or recognizes as reissued an L1 request.
// Reissue detection (§3.2): same requester and address with a different
// serial number means the previous attempt's response may be lost, so the
// current response is re-sent with the new serial number instead of
// queueing the request behind itself.
func (l *L2) handleRequest(m *msg.Message) {
	req := pendingReq{typ: m.Type, from: m.Src, tid: m.TID, sn: m.SN}
	t := l.trans.Get(m.Addr)
	if t == nil {
		t = l.trans.Alloc(m.Addr)
		t.owner = l
		t.addr = m.Addr
		t.req = req
		l.service(m.Addr, t)
		return
	}
	if t.req.from == m.Src && t.req.typ == m.Type {
		if t.req.sn == m.SN {
			return // duplicate delivery of the same attempt
		}
		t.req.sn = m.SN
		l.resendResponse(m.Addr, t)
		return
	}
	// Reissue of a queued request updates its serial number in place.
	for i := range t.queue {
		if t.queue[i].from == m.Src && t.queue[i].typ == m.Type {
			t.queue[i].sn = m.SN
			return
		}
	}
	t.queue = append(t.queue, req)
}

// service executes the current request against the directory state.
func (l *L2) service(addr msg.Addr, t *l2Trans) {
	line := l.array.Lookup(addr)
	r := t.req
	t.tid = r.tid
	t.respKind = respNone
	t.invTargets = nil
	t.unblockReceived = false
	t.backupCleared = false
	t.sentDataExTo = 0

	switch r.typ {
	case msg.GetS:
		l.migOnRead(addr, r.from)
		if line == nil {
			l.startFetch(addr, t)
			return
		}
		l.array.Touch(line)
		if line.State == L2StateS {
			if line.Sharers.Empty() {
				t.respKind = respDataEx
				t.sentDataExTo = r.from
				t.ackCount = 0
				l.send(&msg.Message{
					Type: msg.DataEx, Dst: r.from, Addr: addr, TID: r.tid, SN: r.sn,
					Payload: line.Payload, Dirty: line.Dirty,
				})
				l.obs.StateChange("l2", l.id, addr, r.tid, "S", "M")
				l.obs.BackupCreated("l2", l.id, addr, r.tid, r.from)
				line.State = L2StateM
				line.Owner = r.from
				l.armBackup(addr, t)
			} else {
				t.respKind = respData
				l.send(&msg.Message{
					Type: msg.Data, Dst: r.from, Addr: addr, TID: r.tid, SN: r.sn,
					Payload: line.Payload,
				})
				line.Sharers.Add(l.topo.SharerIndex(r.from))
			}
			l.enterWaitUnblock(addr, t)
			return
		}
		if line.Owner == r.from {
			protocolPanic("L2 %d GetS from current owner %d for %#x", l.id, r.from, addr)
		}
		t.respKind = respFwd
		t.respFwdType = msg.GetS
		t.fwdDest = line.Owner
		t.ackCount = 0
		if l.params.MigratoryOpt && l.migratory(addr) && line.Sharers.Empty() {
			l.run.Proto.MigratoryGrants++
			// The grantee's read-modify-write store will hit locally and
			// never reach the directory, so record the implied write here;
			// otherwise the next reader would look like plain read sharing
			// and demote the line after every migration.
			l.migOnWrite(addr, r.from)
			t.respMigratory = true
			l.send(&msg.Message{
				Type: msg.GetS, Dst: line.Owner, Addr: addr, TID: r.tid, SN: r.sn,
				Forwarded: true, Migratory: true, Requestor: r.from,
			})
			line.Owner = r.from
		} else {
			t.respMigratory = false
			l.send(&msg.Message{
				Type: msg.GetS, Dst: line.Owner, Addr: addr, TID: r.tid, SN: r.sn,
				Forwarded: true, Requestor: r.from,
			})
			line.Sharers.Add(l.topo.SharerIndex(r.from))
		}
		l.enterWaitUnblock(addr, t)

	case msg.GetX:
		l.migOnWrite(addr, r.from)
		if line == nil {
			l.startFetch(addr, t)
			return
		}
		l.array.Touch(line)
		t.invTargets = l.invTargets(line, r.from)
		t.ackCount = len(t.invTargets)
		l.sendInvs(addr, t)
		if line.State == L2StateS {
			t.respKind = respDataEx
			t.sentDataExTo = r.from
			l.send(&msg.Message{
				Type: msg.DataEx, Dst: r.from, Addr: addr, TID: r.tid, SN: r.sn,
				Payload: line.Payload, Dirty: line.Dirty, AckCount: t.ackCount,
			})
			l.obs.StateChange("l2", l.id, addr, r.tid, "S", "M")
			l.obs.BackupCreated("l2", l.id, addr, r.tid, r.from)
			line.State = L2StateM
			line.Owner = r.from
			l.armBackup(addr, t)
		} else if line.Owner == r.from {
			t.respKind = respNoPayload
			l.send(&msg.Message{
				Type: msg.DataEx, Dst: r.from, Addr: addr, TID: r.tid, SN: r.sn,
				NoPayload: true, AckCount: t.ackCount,
			})
		} else {
			t.respKind = respFwd
			t.respFwdType = msg.GetX
			t.fwdDest = line.Owner
			l.send(&msg.Message{
				Type: msg.GetX, Dst: line.Owner, Addr: addr, TID: r.tid, SN: r.sn,
				Forwarded: true, Requestor: r.from, AckCount: t.ackCount,
			})
			line.Owner = r.from
		}
		line.Sharers.Clear()
		l.enterWaitUnblock(addr, t)

	case msg.Put:
		t.respKind = respWbAck
		t.wantData = line != nil && line.State == L2StateM && line.Owner == r.from
		l.send(&msg.Message{
			Type: msg.WbAck, Dst: r.from, Addr: addr, TID: r.tid, SN: r.sn, WantData: t.wantData,
		})
		l.enterWaitWbData(addr, t)

	default:
		protocolPanic("L2 %d cannot service %v", l.id, r.typ)
	}
}

// invTargets returns the sharers to invalidate for a write by requester.
func (l *L2) invTargets(line *cache.Line, requester msg.NodeID) []msg.NodeID {
	var targets []msg.NodeID
	line.Sharers.ForEach(func(i int) {
		dst := l.topo.L1FromSharerIndex(i)
		if dst != requester {
			targets = append(targets, dst)
		}
	})
	return targets
}

// sendInvs (re)sends the invalidations with the current serial number.
func (l *L2) sendInvs(addr msg.Addr, t *l2Trans) {
	for _, dst := range t.invTargets {
		l.send(&msg.Message{Type: msg.Inv, Dst: dst, Addr: addr, TID: t.tid, SN: t.req.sn, Requestor: t.req.from})
	}
}

// resendResponse re-answers the in-service request after a reissue.
func (l *L2) resendResponse(addr msg.Addr, t *l2Trans) {
	if t.phase != phaseWaitUnblock && t.phase != phaseWaitWbData {
		return // nothing sent yet (e.g. fetch in progress) or already past
	}
	line := l.array.Lookup(addr)
	r := t.req
	switch t.respKind {
	case respData:
		l.send(&msg.Message{
			Type: msg.Data, Dst: r.from, Addr: addr, TID: r.tid, SN: r.sn, Payload: line.Payload,
		})
	case respDataEx:
		l.sendInvs(addr, t)
		l.send(&msg.Message{
			Type: msg.DataEx, Dst: r.from, Addr: addr, TID: r.tid, SN: r.sn,
			Payload: line.Payload, Dirty: line.Dirty, AckCount: t.ackCount,
		})
	case respNoPayload:
		l.sendInvs(addr, t)
		l.send(&msg.Message{
			Type: msg.DataEx, Dst: r.from, Addr: addr, TID: r.tid, SN: r.sn,
			NoPayload: true, AckCount: t.ackCount,
		})
	case respFwd:
		l.sendInvs(addr, t)
		l.send(&msg.Message{
			Type: t.respFwdType, Dst: t.fwdDest, Addr: addr, TID: r.tid, SN: r.sn,
			Forwarded: true, Migratory: t.respMigratory, Requestor: r.from,
			AckCount: t.ackCount,
		})
	case respWbAck:
		l.send(&msg.Message{
			Type: msg.WbAck, Dst: r.from, Addr: addr, TID: r.tid, SN: r.sn, WantData: t.wantData,
		})
	}
}

// enterWaitUnblock arms the lost-unblock timeout (§3.3).
func (l *L2) enterWaitUnblock(addr msg.Addr, t *l2Trans) {
	t.phase = phaseWaitUnblock
	t.unblockTimer.Bind(l.engine)
	l.armUnblockTimer(addr, t)
}

func (l *L2) armUnblockTimer(addr msg.Addr, t *l2Trans) {
	t.unblockTimer.StartCall(l.params.LostUnblockTimeout, l2UnblockFired, t)
}

func l2UnblockFired(arg any) {
	t := arg.(*l2Trans)
	l, addr := t.owner, t.addr
	if l.trans.Get(addr) != t || t.phase != phaseWaitUnblock {
		return
	}
	if l.deadParty(t) {
		// The requester, forward target or an invalidation target died: no
		// unblock (or ack) will ever come. Park for reconstruction.
		l.armUnblockTimer(addr, t)
		return
	}
	l.run.Proto.LostUnblockTimeouts++
	l.obs.TimeoutFired("l2", l.id, addr, t.tid, obs.TimeoutLostUnblock)
	l.send(&msg.Message{Type: msg.UnblockPing, Dst: t.req.from, Addr: addr, TID: t.tid, SN: t.req.sn})
	l.armUnblockTimer(addr, t)
}

// enterWaitWbData arms the writeback flavour of the lost-unblock timeout.
func (l *L2) enterWaitWbData(addr msg.Addr, t *l2Trans) {
	t.phase = phaseWaitWbData
	t.unblockTimer.Bind(l.engine)
	l.armWbPingTimer(addr, t)
}

func (l *L2) armWbPingTimer(addr msg.Addr, t *l2Trans) {
	t.unblockTimer.StartCall(l.params.LostUnblockTimeout, l2WbPingFired, t)
}

func l2WbPingFired(arg any) {
	t := arg.(*l2Trans)
	l, addr := t.owner, t.addr
	if l.trans.Get(addr) != t || t.phase != phaseWaitWbData {
		return
	}
	if l.domains.MaybeDeclareDead(t.req.from) {
		l.armWbPingTimer(addr, t)
		return
	}
	l.run.Proto.LostUnblockTimeouts++
	l.obs.TimeoutFired("l2", l.id, addr, t.tid, obs.TimeoutLostUnblock)
	l.send(&msg.Message{Type: msg.WbPing, Dst: t.req.from, Addr: addr, TID: t.tid, SN: t.req.sn})
	l.armWbPingTimer(addr, t)
}

// armBackup guards the in-chip backup held after sending DataEx to an L1.
func (l *L2) armBackup(addr msg.Addr, t *l2Trans) {
	t.backupTimer.Bind(l.engine)
	t.backupTimer.StartCall(l.params.BackupTimeout, l2BackupFired, t)
}

func l2BackupFired(arg any) {
	t := arg.(*l2Trans)
	l, addr := t.owner, t.addr
	if l.trans.Get(addr) != t || t.sentDataExTo == 0 || t.backupCleared {
		return
	}
	if l.domains.MaybeDeclareDead(t.sentDataExTo) {
		l.armBackup(addr, t)
		return
	}
	l.run.Proto.BackupTimeouts++
	l.obs.TimeoutFired("l2", l.id, addr, t.tid, obs.TimeoutBackup)
	l.send(&msg.Message{Type: msg.OwnershipPing, Dst: t.sentDataExTo, Addr: addr, TID: t.tid, SN: l.serial.Next()})
	l.armBackup(addr, t)
}

// handleUnblock processes Unblock/UnblockEx from the blocker, including a
// piggybacked AckO (§3.1).
func (l *L2) handleUnblock(m *msg.Message) {
	t := l.trans.Get(m.Addr)
	if t == nil || t.phase != phaseWaitUnblock || m.Src != t.req.from {
		// Duplicate unblock after the transaction closed (resent via ping
		// crossing the original) — but a piggybacked AckO must still be
		// answered so the L1 can leave its blocked state.
		if m.PiggybackAckO {
			l.acceptAckOFromL1(m.Addr, m.Src, m.TID, m.SN)
		}
		l.run.Proto.StaleSNDiscarded++
		return
	}
	t.unblockReceived = true
	if m.PiggybackAckO {
		l.acceptAckOFromL1(m.Addr, m.Src, m.TID, m.SN)
	}
	l.maybeCloseRequest(m.Addr, t)
}

// acceptAckOFromL1 clears the in-chip backup (if one matches) and always
// answers with AckBD (§3.4: a node that no longer holds a backup replies
// anyway, using the new serial number).
func (l *L2) acceptAckOFromL1(addr msg.Addr, src msg.NodeID, tid msg.TID, sn msg.SerialNumber) {
	if t := l.trans.Get(addr); t != nil && t.sentDataExTo == src && !t.backupCleared {
		t.backupCleared = true
		t.backupTimer.Stop()
		l.obs.BackupDeleted("l2", l.id, addr, tid)
	}
	l.send(&msg.Message{Type: msg.AckBD, Dst: src, Addr: addr, TID: tid, SN: sn})
}

// maybeCloseRequest closes a request transaction once the unblock arrived
// and, for responses that moved ownership out of the L2's copy, the backup
// was released. If the data originally came from memory, the deferred
// UnblockEx+AckO chain to memory starts here (§3.1.1).
func (l *L2) maybeCloseRequest(addr msg.Addr, t *l2Trans) {
	if !t.unblockReceived {
		return
	}
	if t.respKind == respDataEx && !t.backupCleared {
		return
	}
	if t.owedMem {
		t.owedMem = false
		l.sendMemUnblock(addr, t.tid, t.memSN)
	}
	l.finish(addr, t)
}

// sendMemUnblock sends the UnblockEx with the piggybacked AckO to memory
// and marks the line externally blocked until memory's AckBD.
func (l *L2) sendMemUnblock(addr msg.Addr, tid msg.TID, sn msg.SerialNumber) {
	mem := l.topo.HomeMem(addr)
	l.run.Proto.AcksOSent++
	if l.params.DisablePiggyback {
		l.send(&msg.Message{Type: msg.UnblockEx, Dst: mem, Addr: addr, TID: tid, SN: sn})
		l.send(&msg.Message{Type: msg.AckO, Dst: mem, Addr: addr, TID: tid, SN: sn})
	} else {
		l.run.Proto.PiggybackedAcksO++
		l.send(&msg.Message{
			Type: msg.UnblockEx, Dst: mem, Addr: addr, TID: tid, SN: sn, PiggybackAckO: true,
		})
	}
	eb := l.ext.Alloc(addr)
	eb.owner = l
	eb.addr = addr
	eb.tid = tid
	eb.sn = sn
	eb.timer.Bind(l.engine)
	l.armExtAckBD(addr, eb)
}

// armExtAckBD resends the AckO to memory if its AckBD never arrives.
func (l *L2) armExtAckBD(addr msg.Addr, eb *extBlock) {
	eb.timer.StartCall(l.params.LostAckBDTimeout, extAckBDFired, eb)
}

func extAckBDFired(arg any) {
	eb := arg.(*extBlock)
	l, addr := eb.owner, eb.addr
	if l.ext.Get(addr) != eb {
		return
	}
	l.run.Proto.LostAckBDTimeouts++
	l.obs.TimeoutFired("l2", l.id, addr, eb.tid, obs.TimeoutLostAckBD)
	oldSN := eb.sn
	eb.sn = l.serial.Next()
	l.obs.Reissue("l2", l.id, addr, eb.tid, msg.AckO, oldSN, eb.sn)
	l.run.Proto.AcksOSent++
	l.send(&msg.Message{Type: msg.AckO, Dst: l.topo.HomeMem(addr), Addr: addr, TID: eb.tid, SN: eb.sn})
	l.armExtAckBD(addr, eb)
}

// handleWbData absorbs a writeback's data: ownership moved from the L1 to
// this bank, so acknowledge it and hold the transaction open until the
// L1's backup is deleted (AckBD).
func (l *L2) handleWbData(m *msg.Message) {
	t := l.trans.Get(m.Addr)
	if t == nil || t.phase != phaseWaitWbData || m.Src != t.req.from {
		l.run.Proto.StaleSNDiscarded++
		return
	}
	t.unblockTimer.Stop()
	line := l.array.Lookup(m.Addr)
	if line == nil || line.State != L2StateM || line.Owner != t.req.from {
		// The ownership moved while the Put was in flight and the L1 still
		// sent data: impossible, because WantData is only set for the
		// current owner and serial numbers guard the WbAck.
		protocolPanic("L2 %d unexpected WbData: %v", l.id, m)
	}
	l.obs.StateChange("l2", l.id, m.Addr, m.TID, "M", "S")
	line.State = L2StateS
	line.Owner = 0
	line.Payload = m.Payload
	line.Dirty = m.Dirty
	l.sendAckO(m.Addr, t, m.Src, m.SN, nil)
}

// sendAckO acknowledges received ownership and waits for the AckBD;
// afterAckBD (may be nil) runs before the transaction closes.
func (l *L2) sendAckO(addr msg.Addr, t *l2Trans, to msg.NodeID, sn msg.SerialNumber, afterAckBD func()) {
	t.ackOTo = to
	t.ackOSN = sn
	t.afterAckBD = afterAckBD
	t.phase = phaseWaitAckBD
	l.run.Proto.AcksOSent++
	l.send(&msg.Message{Type: msg.AckO, Dst: to, Addr: addr, TID: t.tid, SN: sn})
	t.ackBDTimer.Bind(l.engine)
	l.armAckBDTimer(addr, t)
}

func (l *L2) armAckBDTimer(addr msg.Addr, t *l2Trans) {
	t.ackBDTimer.StartCall(l.params.LostAckBDTimeout, l2AckBDFired, t)
}

func l2AckBDFired(arg any) {
	t := arg.(*l2Trans)
	l, addr := t.owner, t.addr
	if l.trans.Get(addr) != t || t.phase != phaseWaitAckBD {
		return
	}
	if l.domains.MaybeDeclareDead(t.ackOTo) {
		l.armAckBDTimer(addr, t)
		return
	}
	l.run.Proto.LostAckBDTimeouts++
	l.obs.TimeoutFired("l2", l.id, addr, t.tid, obs.TimeoutLostAckBD)
	oldSN := t.ackOSN
	t.ackOSN = l.serial.Next()
	l.obs.Reissue("l2", l.id, addr, t.tid, msg.AckO, oldSN, t.ackOSN)
	l.run.Proto.AcksOSent++
	l.send(&msg.Message{Type: msg.AckO, Dst: t.ackOTo, Addr: addr, TID: t.tid, SN: t.ackOSN})
	l.armAckBDTimer(addr, t)
}

// handleWbNoData closes a writeback transaction without data (stale Put or
// WbCancel answer to a WbPing).
func (l *L2) handleWbNoData(m *msg.Message) {
	t := l.trans.Get(m.Addr)
	if t == nil || t.phase != phaseWaitWbData || m.Src != t.req.from {
		l.run.Proto.StaleSNDiscarded++
		return
	}
	t.unblockTimer.Stop()
	l.finish(m.Addr, t)
}

// handleData receives a memory fetch completion or recalled owner data.
func (l *L2) handleData(m *msg.Message) {
	t := l.trans.Get(m.Addr)
	if t == nil {
		l.run.Proto.StaleSNDiscarded++
		return
	}
	switch t.phase {
	case phaseWaitMemData:
		if m.SN != t.memSN {
			l.run.Proto.StaleSNDiscarded++
			l.run.Proto.FalsePositives++
			return
		}
		t.memTimer.Stop()
		l.run.Proto.L2Misses++
		t.fetched = m.Payload
		t.fetchedDirty = m.Dirty
		// The UnblockEx+AckO to memory is deferred until the requesting
		// L1's own AckO arrives (§3.1.1); remember the serial number.
		t.owedMem = true
		l.install(m.Addr, t)
	case phaseWaitRecall:
		if m.SN != t.recallSN {
			l.run.Proto.StaleSNDiscarded++
			return
		}
		t.gotData = true
		t.recalled = m.Payload
		t.recallFrom = m.Src
		l.tryFinishRecall(m.Addr, t)
	default:
		l.run.Proto.StaleSNDiscarded++
	}
}

// handleRecallAck counts sharer acknowledgments during an eviction.
func (l *L2) handleRecallAck(m *msg.Message) {
	t := l.trans.Get(m.Addr)
	if t == nil || t.phase != phaseWaitRecall || m.SN != t.recallSN {
		l.run.Proto.StaleSNDiscarded++
		return
	}
	t.pendingAcks--
	l.tryFinishRecall(m.Addr, t)
}

// tryFinishRecall proceeds once all L1 copies are collected: acknowledge
// the recalled owner's backup (if data moved) and then write back.
func (l *L2) tryFinishRecall(addr msg.Addr, t *l2Trans) {
	if t.pendingAcks > 0 || (t.needData && !t.gotData) {
		return
	}
	t.recallTimer.Stop()
	line := l.array.Lookup(addr)
	if line == nil {
		protocolPanic("L2 %d recall finished for missing line %#x", l.id, addr)
	}
	line.Sharers.Clear()
	if t.needData {
		l.obs.StateChange("l2", l.id, addr, t.tid, "M", "S")
		line.State = L2StateS
		line.Owner = 0
		line.Payload = t.recalled
		line.Dirty = true
		// The old owner holds a backup for the transfer; release it and
		// only then move the data off-chip (never two backups).
		l.sendAckO(addr, t, t.recallFrom, t.recallSN, func() {
			l.evictToMem(addr, t, l.array.Lookup(addr))
		})
		return
	}
	l.evictToMem(addr, t, line)
}

// evictToMem frees the frame and starts the three-phase writeback to
// memory, deferring while the line is externally blocked.
func (l *L2) evictToMem(addr msg.Addr, t *l2Trans, line *cache.Line) {
	if eb := l.ext.Get(addr); eb != nil {
		eb.onClear = append(eb.onClear, func() { l.evictToMem(addr, t, l.array.Lookup(addr)) })
		return
	}
	if line != nil && line.Valid {
		t.wbPayload = line.Payload
		t.wbDirty = line.Dirty
		t.wbValid = true
		line.Valid = false
		l.obs.StateChange("l2", l.id, addr, t.tid, l2StateName(line.State), "I")
	}
	t.phase = phaseWaitMemWbAck
	t.memSN = l.serial.Next()
	l.send(&msg.Message{Type: msg.Put, Dst: l.topo.HomeMem(addr), Addr: addr, TID: t.tid, SN: t.memSN})
	l.armMemTimer(addr, t, msg.Put)
}

// armMemTimer reissues a memory-facing request (GetX fetch or Put) whose
// response never arrived — the L2 plays the requester role toward memory,
// so it runs its own lost-request timeout (§3.5).
func (l *L2) armMemTimer(addr msg.Addr, t *l2Trans, typ msg.Type) {
	t.memTyp = typ
	t.memTimer.Bind(l.engine)
	t.memTimer.StartCall(sim.Backoff(l.params.LostRequestTimeout, t.memAttempts), l2MemTimerFired, t)
}

func l2MemTimerFired(arg any) {
	t := arg.(*l2Trans)
	l, addr, typ := t.owner, t.addr, t.memTyp
	if l.trans.Get(addr) != t {
		return
	}
	if typ == msg.GetX && t.phase != phaseWaitMemData {
		return
	}
	if typ == msg.Put && t.phase != phaseWaitMemWbAck {
		return
	}
	l.run.Proto.LostRequestTimeouts++
	l.run.Proto.RequestsReissued++
	l.obs.TimeoutFired("l2", l.id, addr, t.tid, obs.TimeoutLostRequest)
	t.memAttempts++
	oldSN := t.memSN
	t.memSN = l.serial.Next()
	l.obs.Reissue("l2", l.id, addr, t.tid, typ, oldSN, t.memSN)
	l.send(&msg.Message{Type: typ, Dst: l.topo.HomeMem(addr), Addr: addr, TID: t.tid, SN: t.memSN})
	l.armMemTimer(addr, t, typ)
}

// handleMemWbAck sends the eviction's data to memory (or WbNoData when the
// line was clean). Sending WbData makes this bank the backup until
// memory's AckO.
func (l *L2) handleMemWbAck(m *msg.Message) {
	t := l.trans.Get(m.Addr)
	if t == nil || t.phase != phaseWaitMemWbAck || m.SN != t.memSN {
		l.run.Proto.StaleSNDiscarded++
		return
	}
	t.memTimer.Stop()
	if m.WantData && t.wbDirty {
		t.phase = phaseWaitMemAckO
		l.obs.BackupCreated("l2", l.id, m.Addr, t.tid, m.Src)
		l.send(&msg.Message{
			Type: msg.WbData, Dst: m.Src, Addr: m.Addr, TID: t.tid, SN: m.SN,
			Payload: t.wbPayload, Dirty: true,
		})
		l.armMemBackup(m.Addr, t)
		return
	}
	l.send(&msg.Message{Type: msg.WbNoData, Dst: m.Src, Addr: m.Addr, TID: t.tid, SN: m.SN})
	t.wbValid = false
	l.finish(m.Addr, t)
}

// armMemBackup pings memory if the AckO for our WbData never arrives.
func (l *L2) armMemBackup(addr msg.Addr, t *l2Trans) {
	t.backupTimer.Bind(l.engine)
	t.backupTimer.StartCall(l.params.BackupTimeout, l2MemBackupFired, t)
}

func l2MemBackupFired(arg any) {
	t := arg.(*l2Trans)
	l, addr := t.owner, t.addr
	if l.trans.Get(addr) != t || t.phase != phaseWaitMemAckO {
		return
	}
	l.run.Proto.BackupTimeouts++
	l.obs.TimeoutFired("l2", l.id, addr, t.tid, obs.TimeoutBackup)
	l.send(&msg.Message{Type: msg.OwnershipPing, Dst: l.topo.HomeMem(addr), Addr: addr, TID: t.tid, SN: l.serial.Next()})
	l.armMemBackup(addr, t)
}

// handleAckO routes an ownership acknowledgment: from memory it completes
// an eviction writeback; from an L1 it is a standalone resend of a
// piggybacked acknowledgment.
func (l *L2) handleAckO(m *msg.Message) {
	if l.topo.IsMem(m.Src) {
		t := l.trans.Get(m.Addr)
		if t != nil && t.phase == phaseWaitMemAckO {
			t.backupTimer.Stop()
			t.wbValid = false
			l.obs.BackupDeleted("l2", l.id, m.Addr, t.tid)
			l.send(&msg.Message{Type: msg.AckBD, Dst: m.Src, Addr: m.Addr, TID: m.TID, SN: m.SN})
			l.finish(m.Addr, t)
			return
		}
		// Duplicate AckO after our AckBD was lost: answer again.
		l.send(&msg.Message{Type: msg.AckBD, Dst: m.Src, Addr: m.Addr, TID: m.TID, SN: m.SN})
		return
	}
	l.acceptAckOFromL1(m.Addr, m.Src, m.TID, m.SN)
	if t := l.trans.Get(m.Addr); t != nil && t.phase == phaseWaitUnblock {
		l.maybeCloseRequest(m.Addr, t)
	}
}

// handleAckBD routes a backup-deletion acknowledgment: from memory it
// clears the external block; from an L1 it releases a transaction waiting
// in phaseWaitAckBD.
func (l *L2) handleAckBD(m *msg.Message) {
	if l.topo.IsMem(m.Src) {
		eb := l.ext.Get(m.Addr)
		if eb == nil {
			l.run.Proto.StaleSNDiscarded++
			return
		}
		if m.SN != eb.sn {
			l.run.Proto.StaleSNDiscarded++
			l.run.Proto.FalsePositives++
			return
		}
		eb.timer.Stop()
		tid := eb.tid
		for _, fn := range eb.onClear {
			l.engine.Schedule(0, fn)
		}
		l.ext.Free(m.Addr)
		l.obs.TransactionEnd("l2", l.id, m.Addr, tid)
		return
	}
	t := l.trans.Get(m.Addr)
	if t == nil || t.phase != phaseWaitAckBD || m.Src != t.ackOTo {
		l.run.Proto.StaleSNDiscarded++
		return
	}
	if m.SN != t.ackOSN {
		l.run.Proto.StaleSNDiscarded++
		l.run.Proto.FalsePositives++
		return
	}
	t.ackBDTimer.Stop()
	after := t.afterAckBD
	t.afterAckBD = nil
	if after != nil {
		after()
		return
	}
	l.finish(m.Addr, t)
}

// handleUnblockPing answers memory's query about our pending unblock.
func (l *L2) handleUnblockPing(m *msg.Message) {
	if t := l.trans.Get(m.Addr); t != nil && t.owedMem {
		return // still waiting for the L1's AckO; memory must keep waiting
	}
	if eb := l.ext.Get(m.Addr); eb != nil {
		l.run.Proto.AcksOSent++
		l.run.Proto.PiggybackedAcksO++
		l.send(&msg.Message{
			Type: msg.UnblockEx, Dst: m.Src, Addr: m.Addr, TID: eb.tid, SN: eb.sn, PiggybackAckO: true,
		})
		return
	}
	// Stale ping (our unblock already arrived): answer idempotently.
	l.send(&msg.Message{Type: msg.UnblockEx, Dst: m.Src, Addr: m.Addr, TID: m.TID, SN: m.SN})
}

// handleMemWbPing answers memory's query about an eviction writeback.
func (l *L2) handleMemWbPing(m *msg.Message) {
	t := l.trans.Get(m.Addr)
	if t == nil || !t.wbValid {
		l.send(&msg.Message{Type: msg.WbCancel, Dst: m.Src, Addr: m.Addr, TID: m.TID, SN: m.SN})
		return
	}
	switch t.phase {
	case phaseWaitMemAckO:
		t.memSN = m.SN
		l.send(&msg.Message{
			Type: msg.WbData, Dst: m.Src, Addr: m.Addr, TID: t.tid, SN: m.SN,
			Payload: t.wbPayload, Dirty: true,
		})
	case phaseWaitMemWbAck:
		// Our Put's WbAck was lost; the ping proves memory wants the data.
		t.memTimer.Stop()
		t.memSN = m.SN
		if t.wbDirty {
			t.phase = phaseWaitMemAckO
			l.send(&msg.Message{
				Type: msg.WbData, Dst: m.Src, Addr: m.Addr, TID: t.tid, SN: m.SN,
				Payload: t.wbPayload, Dirty: true,
			})
			l.armMemBackup(m.Addr, t)
		} else {
			l.send(&msg.Message{Type: msg.WbNoData, Dst: m.Src, Addr: m.Addr, TID: t.tid, SN: m.SN})
			t.wbValid = false
			l.finish(m.Addr, t)
		}
	default:
		l.send(&msg.Message{Type: msg.WbCancel, Dst: m.Src, Addr: m.Addr, TID: m.TID, SN: m.SN})
	}
}

// handleOwnershipPing confirms or denies that this bank received the
// ownership the pinger holds a backup for.
func (l *L2) handleOwnershipPing(m *msg.Message) {
	addr := m.Addr
	if l.topo.IsMem(m.Src) {
		// Memory asks whether we received its DataEx.
		if t := l.trans.Get(addr); t != nil && t.owedMem {
			// We have the data; confirming early is safe (our line is the
			// in-chip backup for the onward transfer).
			l.run.Proto.AcksOSent++
			l.send(&msg.Message{Type: msg.AckO, Dst: m.Src, Addr: addr, TID: m.TID, SN: m.SN})
			return
		}
		if eb := l.ext.Get(addr); eb != nil {
			l.run.Proto.AcksOSent++
			l.send(&msg.Message{Type: msg.AckO, Dst: m.Src, Addr: addr, TID: eb.tid, SN: eb.sn})
			return
		}
		if l.array.Lookup(addr) != nil {
			l.run.Proto.AcksOSent++
			l.send(&msg.Message{Type: msg.AckO, Dst: m.Src, Addr: addr, TID: m.TID, SN: m.SN})
			return
		}
		l.send(&msg.Message{Type: msg.NackO, Dst: m.Src, Addr: addr, TID: m.TID, SN: m.SN})
		return
	}
	// An L1 asks whether its WbData (or recalled data) reached us.
	if t := l.trans.Get(addr); t != nil && t.phase == phaseWaitAckBD && t.ackOTo == m.Src {
		l.run.Proto.AcksOSent++
		l.send(&msg.Message{Type: msg.AckO, Dst: m.Src, Addr: addr, TID: t.tid, SN: t.ackOSN})
		return
	}
	if line := l.array.Lookup(addr); line != nil && line.State == L2StateS {
		l.run.Proto.AcksOSent++
		l.send(&msg.Message{Type: msg.AckO, Dst: m.Src, Addr: addr, TID: m.TID, SN: m.SN})
		return
	}
	l.send(&msg.Message{Type: msg.NackO, Dst: m.Src, Addr: addr, TID: m.TID, SN: m.SN})
}

// handleNackO restarts the relevant backup timer; recovery is driven by
// reissues elsewhere.
func (l *L2) handleNackO(m *msg.Message) {
	t := l.trans.Get(m.Addr)
	if t == nil {
		return
	}
	if t.phase == phaseWaitMemAckO {
		l.armMemBackup(m.Addr, t)
		return
	}
	if t.sentDataExTo != 0 && !t.backupCleared {
		l.armBackup(m.Addr, t)
	}
}

// startFetch requests the line from memory with ownership, guarded by the
// L2's own lost-request timeout.
func (l *L2) startFetch(addr msg.Addr, t *l2Trans) {
	t.phase = phaseWaitMemData
	t.memSN = l.serial.Next()
	l.send(&msg.Message{Type: msg.GetX, Dst: l.topo.HomeMem(addr), Addr: addr, TID: t.tid, SN: t.memSN})
	l.armMemTimer(addr, t, msg.GetX)
}

// install places fetched data into the array, evicting a victim if needed,
// then re-services the waiting request.
func (l *L2) install(addr msg.Addr, t *l2Trans) {
	if l.halted || l.trans.Get(addr) != t {
		return
	}
	victim := l.array.Victim(addr, l.victimFilter)
	if victim == nil {
		l.engine.Schedule(4, func() { l.install(addr, t) })
		return
	}
	if victim.Valid {
		l.startEvict(victim, func() { l.install(addr, t) })
		return
	}
	victim.Reset(addr)
	victim.State = L2StateS
	victim.Payload = t.fetched
	victim.Dirty = t.fetchedDirty
	l.array.Touch(victim)
	l.obs.StateChange("l2", l.id, addr, t.tid, "I", "S")
	l.service(addr, t)
}

// startEvict begins evicting a valid, non-busy line.
func (l *L2) startEvict(line *cache.Line, onDone func()) {
	t := l.trans.Get(line.Addr)
	if t != nil {
		if t.evict {
			t.onDone = append(t.onDone, onDone)
			return
		}
		protocolPanic("L2 %d evicting busy line %#x", l.id, line.Addr)
	}
	t = l.trans.Alloc(line.Addr)
	t.owner = l
	t.addr = line.Addr
	t.evict = true
	t.tid = l.tids.Next()
	t.onDone = append(t.onDone, onDone)

	if line.State == L2StateM || !line.Sharers.Empty() {
		l.run.Proto.L2Recalls++
		t.needData = line.State == L2StateM
		t.recallSN = l.serial.Next()
		l.sendRecall(line.Addr, t, line)
		return
	}
	l.evictToMem(line.Addr, t, line)
}

// sendRecall (re)issues the recall: invalidations to sharers, a forwarded
// GetX to the owner if the data must come back.
func (l *L2) sendRecall(addr msg.Addr, t *l2Trans, line *cache.Line) {
	t.phase = phaseWaitRecall
	t.gotData = false
	t.pendingAcks = 0
	t.invTargets = t.invTargets[:0]
	line.Sharers.ForEach(func(i int) {
		dst := l.topo.L1FromSharerIndex(i)
		t.invTargets = append(t.invTargets, dst)
		t.pendingAcks++
		l.send(&msg.Message{Type: msg.Inv, Dst: dst, Addr: addr, TID: t.tid, SN: t.recallSN, Requestor: l.id})
	})
	if t.needData {
		t.fwdDest = line.Owner
		l.send(&msg.Message{
			Type: msg.GetX, Dst: line.Owner, Addr: addr, TID: t.tid, SN: t.recallSN,
			Forwarded: true, Requestor: l.id,
		})
	}
	t.recallTimer.Bind(l.engine)
	l.armRecallTimer(addr, t)
}

// armRecallTimer reissues the recall when responses are lost.
func (l *L2) armRecallTimer(addr msg.Addr, t *l2Trans) {
	t.recallTimer.StartCall(sim.Backoff(l.params.LostRequestTimeout, t.recallAttempts), l2RecallFired, t)
}

func l2RecallFired(arg any) {
	t := arg.(*l2Trans)
	l, addr := t.owner, t.addr
	if l.trans.Get(addr) != t || t.phase != phaseWaitRecall {
		return
	}
	if l.deadParty(t) {
		l.armRecallTimer(addr, t)
		return
	}
	l.run.Proto.LostRequestTimeouts++
	l.run.Proto.RequestsReissued++
	l.obs.TimeoutFired("l2", l.id, addr, t.tid, obs.TimeoutLostRequest)
	t.recallAttempts++
	oldSN := t.recallSN
	t.recallSN = l.serial.Next()
	l.obs.Reissue("l2", l.id, addr, t.tid, msg.GetX, oldSN, t.recallSN)
	line := l.array.Lookup(addr)
	if line == nil {
		protocolPanic("L2 %d recall reissue for missing line %#x", l.id, addr)
	}
	l.sendRecall(addr, t, line)
}

// finish closes the current transaction, runs continuations and services
// the next queued request.
func (l *L2) finish(addr msg.Addr, t *l2Trans) {
	t.timersOff()
	l.obs.TransactionEnd("l2", l.id, addr, t.tid)
	t.phase = phaseIdle
	t.wbValid = false
	t.owedMem = false
	t.evict = false
	t.memAttempts = 0
	t.recallAttempts = 0
	t.needData = false
	t.gotData = false
	t.pendingAcks = 0
	t.respKind = respNone
	t.sentDataExTo = 0
	for _, fn := range t.onDone {
		l.engine.Schedule(0, fn)
	}
	t.onDone = nil
	if len(t.queue) == 0 {
		l.trans.Free(addr)
		return
	}
	t.req = t.queue[0]
	t.queue = t.queue[1:]
	l.service(addr, t)
}

// Migratory detector (identical to DirCMP's). The map holds migInfo by
// value — the records are three words and never referenced across calls, so
// a pointer map would only add an allocation per tracked address.

func (l *L2) migratory(addr msg.Addr) bool {
	return l.mig[addr].migratory
}

func (l *L2) migOnRead(addr msg.Addr, from msg.NodeID) {
	mi := l.mig[addr]
	if mi.lastWasRead && mi.lastReader != 0 && mi.lastReader != from {
		mi.migratory = false
	}
	mi.lastReader = from
	mi.lastWasRead = true
	l.mig[addr] = mi
}

func (l *L2) migOnWrite(addr msg.Addr, from msg.NodeID) {
	mi := l.mig[addr]
	if mi.lastWasRead && mi.lastReader == from {
		mi.migratory = true
	}
	mi.lastWasRead = false
	l.mig[addr] = mi
}

func (l *L2) send(m *msg.Message) {
	pm := msg.NewMessage()
	*pm = *m
	pm.Src = l.id
	l.net.Send(pm)
}

// phaseName names an L2 transaction phase for diagnostics.
func phaseName(p int) string {
	switch p {
	case phaseIdle:
		return "idle"
	case phaseWaitUnblock:
		return "wait-unblock"
	case phaseWaitWbData:
		return "wait-wbdata"
	case phaseWaitAckBD:
		return "wait-ackbd"
	case phaseWaitMemData:
		return "wait-memdata"
	case phaseWaitRecall:
		return "wait-recall"
	case phaseWaitMemWbAck:
		return "wait-memwback"
	case phaseWaitMemAckO:
		return "wait-memacko"
	default:
		return fmt.Sprintf("phase(%d)", p)
	}
}

// Interned "<state>+<phase>" names for InspectLines: the checker inspects
// every line of every agent per run, so building these by concatenation
// would allocate per line.
var (
	l2StatePhase [3][8]string
	l2StateExt   [3]string
	l2WbPhase    [8]string
)

func init() {
	for s := range l2StatePhase {
		l2StateExt[s] = l2StateName(s) + "+extblock"
		for p := range l2StatePhase[s] {
			l2StatePhase[s][p] = l2StateName(s) + "+" + phaseName(p)
		}
	}
	for p := range l2WbPhase {
		l2WbPhase[p] = "WB+" + phaseName(p)
	}
}

func l2StatePhaseName(s, p int) string {
	if s >= 0 && s < len(l2StatePhase) && p >= 0 && p < len(l2StatePhase[s]) {
		return l2StatePhase[s][p]
	}
	return l2StateName(s) + "+" + phaseName(p)
}

func l2StateExtName(s int) string {
	if s >= 0 && s < len(l2StateExt) {
		return l2StateExt[s]
	}
	return l2StateName(s) + "+extblock"
}

func l2WbPhaseName(p int) string {
	if p >= 0 && p < len(l2WbPhase) {
		return l2WbPhase[p]
	}
	return "WB+" + phaseName(p)
}

// viewSN picks the serial number that best identifies the transaction for
// diagnostics: the serviced request's, else the memory-facing one, else
// the recall's.
func (t *l2Trans) viewSN() msg.SerialNumber {
	if t.req.sn != 0 {
		return t.req.sn
	}
	if t.memSN != 0 {
		return t.memSN
	}
	return t.recallSN
}

// InspectLines implements proto.Inspectable.
func (l *L2) InspectLines(fn func(proto.LineView)) {
	l.array.ForEach(func(c *cache.Line) {
		t := l.trans.Get(c.Addr)
		backup := t != nil && t.sentDataExTo != 0 && !t.backupCleared
		state := l2StateName(c.State)
		var sn msg.SerialNumber
		if t != nil {
			state = l2StatePhaseName(c.State, t.phase)
			sn = t.viewSN()
		} else if e := l.ext.Get(c.Addr); e != nil {
			state = l2StateExtName(c.State)
			sn = e.sn
		}
		fn(proto.LineView{
			Addr:      c.Addr,
			Owner:     c.State == L2StateS && !backup,
			Backup:    backup,
			Transient: t != nil || l.ext.Get(c.Addr) != nil,
			Payload:   c.Payload,
			State:     state,
			SN:        sn,
		})
	})
	l.trans.ForEach(func(addr msg.Addr, t *l2Trans) {
		if t.wbValid {
			fn(proto.LineView{
				Addr:      addr,
				Owner:     t.phase == phaseWaitMemWbAck,
				Backup:    t.phase == phaseWaitMemAckO,
				Transient: true,
				Payload:   t.wbPayload,
				State:     l2WbPhaseName(t.phase),
				SN:        t.viewSN(),
			})
		}
	})
}
