package core

import (
	"repro/internal/cache"
	"repro/internal/msg"
)

// Structural-fault recovery surface. When a tile dies, the system layer
// reconstructs the lost directory slice in one atomic flush (see
// internal/system/recovery.go): it enumerates every line the dead tile was
// involved with, computes the freshest surviving copy, writes it back to
// the home memory's store, and then drops all coherence state for those
// lines everywhere — surviving L1 misses are reissued in place toward the
// (re-homed) directory, so the system converges to a state where memory
// owns the line and outstanding requests simply refetch it.
//
// The methods here are that flush's view into each controller: enumerate
// lines (ForEachLine), find lines referencing dead nodes (RefsDead), read
// the freshest local payload (BestPayload), and drop one line's state
// (DropLine). Enumeration order is map order — callers must sort before
// deriving simulation behaviour.

// ForEachLine visits every address this L1 holds any state for: array
// lines, misses, writebacks, backups and blocked-ownership entries.
func (l *L1) ForEachLine(visit func(msg.Addr)) {
	l.array.ForEach(func(c *cache.Line) { visit(c.Addr) })
	l.mshr.ForEach(func(addr msg.Addr, _ *l1Miss) { visit(addr) })
	l.wb.ForEach(func(addr msg.Addr, _ *l1WB) { visit(addr) })
	l.backups.ForEach(func(addr msg.Addr, _ *backupEntry) { visit(addr) })
	l.blocked.ForEach(func(addr msg.Addr, _ *blockedEntry) { visit(addr) })
}

// RefsDead visits every line whose in-flight state references a dead node:
// a backup whose transfer target died, a blocked-ownership entry whose
// backup holder died, or a miss whose data arrived from a now-dead owner.
func (l *L1) RefsDead(dead func(msg.NodeID) bool, visit func(msg.Addr)) {
	l.backups.ForEach(func(addr msg.Addr, b *backupEntry) {
		if dead(b.dest) {
			visit(addr)
		}
	})
	l.blocked.ForEach(func(addr msg.Addr, b *blockedEntry) {
		if dead(b.ackOTo) {
			visit(addr)
		}
	})
	l.mshr.ForEach(func(addr msg.Addr, e *l1Miss) {
		if e.dataArrived && dead(e.dataFrom) {
			visit(addr)
		}
	})
}

// BestPayload returns the freshest copy of addr this L1 holds, across the
// array, writeback buffer, backups and data-arrived misses.
func (l *L1) BestPayload(addr msg.Addr) (msg.Payload, bool) {
	var best msg.Payload
	ok := false
	take := func(p msg.Payload) {
		if !ok || p.Version > best.Version {
			best = p
			ok = true
		}
	}
	if line := l.array.Lookup(addr); line != nil {
		take(line.Payload)
	}
	if w := l.wb.Get(addr); w != nil {
		take(w.payload)
	}
	if b := l.backups.Get(addr); b != nil {
		take(b.payload)
	}
	if e := l.mshr.Get(addr); e != nil && e.dataArrived && !e.noPayload {
		take(e.payload)
	}
	return best, ok
}

// DropLine removes every trace of addr from this L1 except an outstanding
// miss, which is instead reissued in place toward the (re-homed) directory
// with a fresh serial number — in-flight responses to the old attempt are
// then discarded by serial number, so a pre-death response cannot
// resurrect dropped ownership.
func (l *L1) DropLine(addr msg.Addr) {
	if line := l.array.Lookup(addr); line != nil {
		line.Valid = false
	}
	if b := l.backups.Get(addr); b != nil {
		b.timer.Stop()
		l.backups.Free(addr)
	}
	if b := l.blocked.Get(addr); b != nil {
		b.timer.Stop()
		l.blocked.Free(addr) // deferred forwards die with the dead requesters
	}
	if w := l.wb.Get(addr); w != nil {
		l.freeWB(addr, w)
	}
	if e := l.mshr.Get(addr); e != nil {
		e.sn = l.serial.Next()
		if len(e.snHistory) < l.serial.Width() {
			e.snHistory = append(e.snHistory, e.sn)
		}
		e.dataArrived = false
		e.exclusive = false
		e.dirty = false
		e.noPayload = false
		e.ackCountKnown = false
		e.needAcks = 0
		e.acksSeen = 0
		l.send(&msg.Message{Type: e.reqType, Dst: l.homeL2(addr), Addr: addr, SN: e.sn, TID: e.tid})
		l.armLostRequest(addr, e)
	}
}

// ForEachLine visits every address this bank holds any state for: array
// lines and open transactions (including parked writeback payloads).
func (l *L2) ForEachLine(visit func(msg.Addr)) {
	l.array.ForEach(func(c *cache.Line) { visit(c.Addr) })
	l.trans.ForEach(func(addr msg.Addr, _ *l2Trans) { visit(addr) })
}

// RefsDead visits every line whose directory entry or open transaction
// references a dead node: a dead owner or sharer in the directory, or a
// dead requester, forward target, transfer target, backup holder, recall
// source or queued requester in a transaction.
func (l *L2) RefsDead(dead func(msg.NodeID) bool, visit func(msg.Addr)) {
	l.array.ForEach(func(c *cache.Line) {
		if c.State == L2StateM && dead(c.Owner) {
			visit(c.Addr)
			return
		}
		hit := false
		c.Sharers.ForEach(func(i int) {
			if !hit && dead(l.topo.L1FromSharerIndex(i)) {
				hit = true
			}
		})
		if hit {
			visit(c.Addr)
		}
	})
	l.trans.ForEach(func(addr msg.Addr, t *l2Trans) {
		if dead(t.req.from) || dead(t.fwdDest) || dead(t.sentDataExTo) ||
			dead(t.ackOTo) || dead(t.recallFrom) {
			visit(addr)
			return
		}
		for _, dst := range t.invTargets {
			if dead(dst) {
				visit(addr)
				return
			}
		}
		for _, q := range t.queue {
			if dead(q.from) {
				visit(addr)
				return
			}
		}
	})
}

// BestPayload returns the freshest copy of addr this bank holds, across
// the array and any transaction-parked payloads (eviction writeback data,
// recalled owner data, a parked memory fetch).
func (l *L2) BestPayload(addr msg.Addr) (msg.Payload, bool) {
	var best msg.Payload
	ok := false
	take := func(p msg.Payload) {
		if !ok || p.Version > best.Version {
			best = p
			ok = true
		}
	}
	if line := l.array.Lookup(addr); line != nil {
		take(line.Payload)
	}
	if t := l.trans.Get(addr); t != nil {
		if t.wbValid {
			take(t.wbPayload)
		}
		if t.gotData {
			take(t.recalled)
		}
		if t.owedMem {
			take(t.fetched)
		}
	}
	return best, ok
}

// DropLine removes the directory entry and open transaction for addr.
// Continuations parked on the transaction (install retries for other
// lines' fetches) are rescheduled rather than discarded, so an unrelated
// fetch waiting on this line's eviction cannot stall forever. External
// blocks are left alone: the memory side is alive and the AckO/AckBD
// handshake completes on its own.
func (l *L2) DropLine(addr msg.Addr) {
	if t := l.trans.Get(addr); t != nil {
		t.timersOff()
		for _, fn := range t.onDone {
			l.engine.Schedule(0, fn)
		}
		t.onDone = nil
		t.afterAckBD = nil
		l.trans.Free(addr)
	}
	if line := l.array.Lookup(addr); line != nil {
		line.Valid = false
	}
}

// RefsDead visits every line whose memory transaction references a dead
// node (the requesting L2 bank, in service or queued).
func (c *Mem) RefsDead(dead func(msg.NodeID) bool, visit func(msg.Addr)) {
	c.trans.ForEach(func(addr msg.Addr, t *memTrans) {
		if dead(t.req.from) {
			visit(addr)
			return
		}
		for _, q := range t.queue {
			if dead(q.from) {
				visit(addr)
				return
			}
		}
	})
}

// Reconstruct resolves addr at the memory tier: the open transaction (if
// any) is discarded, the freshest surviving payload is written to the
// store, and memory reclaims ownership — afterwards reissued requests
// refetch the line as if it had always been off-chip.
func (c *Mem) Reconstruct(addr msg.Addr, p msg.Payload) {
	if t := c.trans.Get(addr); t != nil {
		t.timersOff()
		c.trans.Free(addr)
	}
	c.store.Write(addr, p)
	c.owned[addr] = false
}

// StorePayload reads the store's current copy of addr.
func (c *Mem) StorePayload(addr msg.Addr) msg.Payload { return c.store.Read(addr) }
