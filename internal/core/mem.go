package core

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/memctrl"
	"repro/internal/msg"
	"repro/internal/obs"
	"repro/internal/proto"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Memory-controller transaction phases.
const (
	memIdle = iota
	// memWaitUnblock: DataEx sent; the store is the backup until the L2's
	// UnblockEx+AckO arrives.
	memWaitUnblock
	// memWaitWbData: WbAck sent; waiting for WbData/WbNoData/WbCancel.
	memWaitWbData
	// memWaitAckBD: AckO sent for received WbData; waiting for the L2 to
	// delete its backup.
	memWaitAckBD
)

// memPhaseName names a memory transaction phase for diagnostics.
func memPhaseName(p int) string {
	switch p {
	case memIdle:
		return "idle"
	case memWaitUnblock:
		return "wait-unblock"
	case memWaitWbData:
		return "wait-wbdata"
	case memWaitAckBD:
		return "wait-ackbd"
	default:
		return fmt.Sprintf("phase(%d)", p)
	}
}

// Interned "chip|mem+<phase>" names for InspectLines: the checker inspects
// every line per run, so building these by concatenation would allocate.
var memChipPhase, memMemPhase [4]string

func init() {
	for p := range memChipPhase {
		memChipPhase[p] = "chip+" + memPhaseName(p)
		memMemPhase[p] = "mem+" + memPhaseName(p)
	}
}

func memStatePhaseName(owned bool, p int) string {
	if p < 0 || p >= len(memChipPhase) {
		if owned {
			return "chip+" + memPhaseName(p)
		}
		return "mem+" + memPhaseName(p)
	}
	if owned {
		return memChipPhase[p]
	}
	return memMemPhase[p]
}

// memTrans is a per-line memory transaction.
//
// owner/addr are back-references set at Alloc so the record itself can be
// the argument of a package-level timer callback (Timer.StartCall); arming a
// timeout then allocates nothing. pingType is the ping the pingTimer sends
// on firing (UnblockPing or WbPing).
type memTrans struct {
	owner *Mem
	addr  msg.Addr

	phase int
	req   pendingReq
	queue []pendingReq

	ackOSN   msg.SerialNumber
	pingType msg.Type

	pingTimer  sim.Timer
	ackBDTimer sim.Timer
}

func (t *memTrans) timersOff() {
	t.pingTimer.Stop()
	t.ackBDTimer.Stop()
}

func resetMemTrans(t *memTrans) {
	t.timersOff()
	*t = memTrans{queue: t.queue[:0], pingTimer: t.pingTimer, ackBDTimer: t.ackBDTimer}
}

// Mem is an FtDirCMP memory controller: the same directory role as the
// DirCMP one, plus reissue detection, the lost-unblock timeout toward the
// L2, and the ownership-acknowledgment handshake on both transfer
// directions.
type Mem struct {
	id     msg.NodeID
	topo   proto.Topology
	params proto.Params
	engine *sim.Engine
	net    proto.Sender
	run    *stats.Run

	store  *memctrl.Store
	owned  map[msg.Addr]bool
	trans  *cache.Table[memTrans]
	serial *msg.SerialSpace
	obs    *obs.Recorder

	// domains is the structural-fault failure detector (nil without
	// structural faults). Memory controllers never die in this fault model;
	// they are detectors and reconstruction anchors only.
	domains *proto.Domains

	// sendDelayed is the prepared ScheduleCall callback for latency-delayed
	// responses; built once so scheduling one allocates nothing.
	sendDelayed func(arg any, tick uint64)
}

var _ proto.Inspectable = (*Mem)(nil)

// NewMem builds an FtDirCMP memory controller over the given store.
func NewMem(id msg.NodeID, topo proto.Topology, params proto.Params, engine *sim.Engine,
	net proto.Sender, run *stats.Run, store *memctrl.Store) *Mem {
	c := &Mem{
		id:     id,
		topo:   topo,
		params: params,
		engine: engine,
		net:    net,
		run:    run,
		store:  store,
		owned:  make(map[msg.Addr]bool),
		trans:  cache.NewTableReset[memTrans](0, resetMemTrans),
		serial: msg.NewSerialSpace(params.SerialBits),
	}
	c.sendDelayed = func(arg any, _ uint64) { c.net.Send(arg.(*msg.Message)) }
	return c
}

// NodeID implements proto.Inspectable.
func (c *Mem) NodeID() msg.NodeID { return c.id }

// SetObserver attaches the structured event recorder (see internal/obs).
func (c *Mem) SetObserver(o *obs.Recorder) { c.obs = o }

// SetDomains attaches the structural-fault domain tracker.
func (c *Mem) SetDomains(d *proto.Domains) { c.domains = d }

// Quiesced reports whether no transaction is in flight.
func (c *Mem) Quiesced() bool { return c.trans.Len() == 0 }

// Handle processes a delivered network message.
func (c *Mem) Handle(m *msg.Message) {
	if c.domains.Declared(m.Src) {
		// Stragglers from declared-dead nodes are discarded so
		// post-reconstruction state stays clean.
		return
	}
	switch m.Type {
	case msg.GetX, msg.Put:
		c.handleRequest(m)
	case msg.UnblockEx, msg.Unblock:
		c.handleUnblock(m)
	case msg.WbData:
		c.handleWbData(m)
	case msg.WbNoData, msg.WbCancel:
		c.handleWbNoData(m)
	case msg.AckO:
		c.handleAckO(m)
	case msg.AckBD:
		c.handleAckBD(m)
	case msg.OwnershipPing:
		c.handleOwnershipPing(m)
	case msg.NackO:
		c.handleNackO(m)
	default:
		protocolPanic("mem %d received unexpected %v", c.id, m)
	}
}

// handleRequest starts, queues or re-answers (reissue) an L2 request.
func (c *Mem) handleRequest(m *msg.Message) {
	req := pendingReq{typ: m.Type, from: m.Src, tid: m.TID, sn: m.SN}
	t := c.trans.Get(m.Addr)
	if t == nil {
		if m.Type == msg.GetX && c.owned[m.Addr] {
			// A superseded fetch attempt arriving after the whole exchange
			// completed: answer with a stale-serial response the L2 will
			// discard, changing nothing.
			c.run.Proto.StaleSNDiscarded++
			c.send(&msg.Message{
				Type: msg.DataEx, Dst: m.Src, Addr: m.Addr, TID: m.TID, SN: m.SN,
				Payload: c.store.Read(m.Addr),
			})
			return
		}
		t = c.trans.Alloc(m.Addr)
		t.owner = c
		t.addr = m.Addr
		t.req = req
		c.service(m.Addr, t)
		return
	}
	if t.req.from == m.Src && t.req.typ == m.Type {
		if t.req.sn == m.SN {
			return
		}
		t.req.sn = m.SN
		c.resendResponse(m.Addr, t)
		return
	}
	for i := range t.queue {
		if t.queue[i].from == m.Src && t.queue[i].typ == m.Type {
			t.queue[i].sn = m.SN
			return
		}
	}
	t.queue = append(t.queue, req)
}

func (c *Mem) service(addr msg.Addr, t *memTrans) {
	switch t.req.typ {
	case msg.GetX:
		if !c.owned[addr] {
			c.obs.StateChange("mem", c.id, addr, t.req.tid, "mem", "chip")
		}
		c.owned[addr] = true
		t.phase = memWaitUnblock
		pm := msg.NewMessage()
		pm.Type, pm.Dst, pm.Addr = msg.DataEx, t.req.from, addr
		pm.TID, pm.SN = t.req.tid, t.req.sn
		pm.Payload = c.store.Read(addr)
		pm.Src = c.id
		c.engine.ScheduleCall(c.params.MemLatency, c.sendDelayed, pm, 0)
		c.armPing(addr, t, msg.UnblockPing)
	case msg.Put:
		t.phase = memWaitWbData
		c.send(&msg.Message{
			Type: msg.WbAck, Dst: t.req.from, Addr: addr, TID: t.req.tid, SN: t.req.sn,
			WantData: c.owned[addr],
		})
		c.armPing(addr, t, msg.WbPing)
	default:
		protocolPanic("mem %d cannot service %v", c.id, t.req.typ)
	}
}

// resendResponse re-answers the in-service request after a reissue.
func (c *Mem) resendResponse(addr msg.Addr, t *memTrans) {
	switch t.phase {
	case memWaitUnblock:
		c.send(&msg.Message{
			Type: msg.DataEx, Dst: t.req.from, Addr: addr, TID: t.req.tid, SN: t.req.sn,
			Payload: c.store.Read(addr),
		})
	case memWaitWbData:
		c.send(&msg.Message{
			Type: msg.WbAck, Dst: t.req.from, Addr: addr, TID: t.req.tid, SN: t.req.sn,
			WantData: c.owned[addr],
		})
	}
}

// armPing runs memory's lost-unblock timeout (§3.3: "FtDirCMP uses an
// unblock timeout and UnblockPing in the memory controller too").
func (c *Mem) armPing(addr msg.Addr, t *memTrans, ping msg.Type) {
	t.pingType = ping
	t.pingTimer.Bind(c.engine)
	t.pingTimer.StartCall(c.params.LostUnblockTimeout, memPingFired, t)
}

func memPingFired(arg any) {
	t := arg.(*memTrans)
	c, addr, ping := t.owner, t.addr, t.pingType
	wantPhase := memWaitUnblock
	if ping == msg.WbPing {
		wantPhase = memWaitWbData
	}
	if c.trans.Get(addr) != t || t.phase != wantPhase {
		return
	}
	if c.domains.MaybeDeclareDead(t.req.from) {
		// The L2 bank this exchange was with died: park for reconstruction.
		c.armPing(addr, t, ping)
		return
	}
	c.run.Proto.LostUnblockTimeouts++
	c.obs.TimeoutFired("mem", c.id, addr, t.req.tid, obs.TimeoutLostUnblock)
	c.send(&msg.Message{Type: ping, Dst: t.req.from, Addr: addr, TID: t.req.tid, SN: t.req.sn})
	c.armPing(addr, t, ping)
}

// handleUnblock closes a fetch transaction; the piggybacked AckO deletes
// memory's backup role and is answered with AckBD.
func (c *Mem) handleUnblock(m *msg.Message) {
	t := c.trans.Get(m.Addr)
	if t == nil || t.phase != memWaitUnblock || m.Src != t.req.from {
		if m.PiggybackAckO {
			c.send(&msg.Message{Type: msg.AckBD, Dst: m.Src, Addr: m.Addr, TID: m.TID, SN: m.SN})
		}
		c.run.Proto.StaleSNDiscarded++
		return
	}
	if m.PiggybackAckO {
		c.send(&msg.Message{Type: msg.AckBD, Dst: m.Src, Addr: m.Addr, TID: m.TID, SN: m.SN})
	}
	c.finish(m.Addr, t)
}

// handleWbData stores the written-back data; ownership moved to memory, so
// acknowledge and wait for the L2's backup deletion.
func (c *Mem) handleWbData(m *msg.Message) {
	t := c.trans.Get(m.Addr)
	if t == nil || t.phase != memWaitWbData || m.Src != t.req.from {
		c.run.Proto.StaleSNDiscarded++
		return
	}
	t.pingTimer.Stop()
	c.store.Write(m.Addr, m.Payload)
	if c.owned[m.Addr] {
		c.obs.StateChange("mem", c.id, m.Addr, m.TID, "chip", "mem")
	}
	c.owned[m.Addr] = false
	t.phase = memWaitAckBD
	t.ackOSN = m.SN
	c.run.Proto.AcksOSent++
	c.send(&msg.Message{Type: msg.AckO, Dst: m.Src, Addr: m.Addr, TID: m.TID, SN: m.SN})
	c.armAckBD(m.Addr, t)
}

func (c *Mem) armAckBD(addr msg.Addr, t *memTrans) {
	t.ackBDTimer.Bind(c.engine)
	t.ackBDTimer.StartCall(c.params.LostAckBDTimeout, memAckBDFired, t)
}

func memAckBDFired(arg any) {
	t := arg.(*memTrans)
	c, addr := t.owner, t.addr
	if c.trans.Get(addr) != t || t.phase != memWaitAckBD {
		return
	}
	if c.domains.MaybeDeclareDead(t.req.from) {
		c.armAckBD(addr, t)
		return
	}
	c.run.Proto.LostAckBDTimeouts++
	c.obs.TimeoutFired("mem", c.id, addr, t.req.tid, obs.TimeoutLostAckBD)
	oldSN := t.ackOSN
	t.ackOSN = c.serial.Next()
	c.obs.Reissue("mem", c.id, addr, t.req.tid, msg.AckO, oldSN, t.ackOSN)
	c.run.Proto.AcksOSent++
	c.send(&msg.Message{Type: msg.AckO, Dst: t.req.from, Addr: addr, TID: t.req.tid, SN: t.ackOSN})
	c.armAckBD(addr, t)
}

// handleWbNoData closes a writeback without data (clean line or WbCancel).
func (c *Mem) handleWbNoData(m *msg.Message) {
	t := c.trans.Get(m.Addr)
	if t == nil || t.phase != memWaitWbData || m.Src != t.req.from {
		c.run.Proto.StaleSNDiscarded++
		return
	}
	t.pingTimer.Stop()
	// WbCancel reports the writeback finished from the L2's point of view.
	// Toward memory that always means the line left the chip: either the
	// data arrived in an earlier exchange (ownership already cleared) or
	// the eviction was clean and its WbNoData was lost. A refetch cannot
	// have been granted meanwhile — this very transaction blocks the line —
	// so clearing ownership is safe in both cases.
	if c.owned[m.Addr] {
		c.obs.StateChange("mem", c.id, m.Addr, m.TID, "chip", "mem")
	}
	c.owned[m.Addr] = false
	c.finish(m.Addr, t)
}

// handleAckO answers a standalone ownership acknowledgment (the L2's
// lost-AckBD resend): the backup role here is implicit (memory always has
// the data), so just acknowledge the deletion.
func (c *Mem) handleAckO(m *msg.Message) {
	c.send(&msg.Message{Type: msg.AckBD, Dst: m.Src, Addr: m.Addr, TID: m.TID, SN: m.SN})
}

// handleAckBD closes the WbData handshake.
func (c *Mem) handleAckBD(m *msg.Message) {
	t := c.trans.Get(m.Addr)
	if t == nil || t.phase != memWaitAckBD || m.Src != t.req.from {
		c.run.Proto.StaleSNDiscarded++
		return
	}
	if m.SN != t.ackOSN {
		c.run.Proto.StaleSNDiscarded++
		c.run.Proto.FalsePositives++
		return
	}
	t.ackBDTimer.Stop()
	c.finish(m.Addr, t)
}

// handleOwnershipPing confirms whether memory received the WbData the
// pinging L2 holds a backup for.
func (c *Mem) handleOwnershipPing(m *msg.Message) {
	t := c.trans.Get(m.Addr)
	if t != nil && t.phase == memWaitAckBD && t.req.from == m.Src {
		c.run.Proto.AcksOSent++
		c.send(&msg.Message{Type: msg.AckO, Dst: m.Src, Addr: m.Addr, TID: t.req.tid, SN: t.ackOSN})
		return
	}
	if t != nil && t.phase == memWaitWbData {
		// Still waiting for the data: the L2's copy is the only one.
		c.send(&msg.Message{Type: msg.NackO, Dst: m.Src, Addr: m.Addr, TID: m.TID, SN: m.SN})
		return
	}
	if !c.owned[m.Addr] {
		// The handshake completed earlier; confirm idempotently.
		c.run.Proto.AcksOSent++
		c.send(&msg.Message{Type: msg.AckO, Dst: m.Src, Addr: m.Addr, TID: m.TID, SN: m.SN})
		return
	}
	c.send(&msg.Message{Type: msg.NackO, Dst: m.Src, Addr: m.Addr, TID: m.TID, SN: m.SN})
}

// handleNackO is ignorable at memory: it never holds an explicit backup
// entry (the store always retains the data).
func (c *Mem) handleNackO(m *msg.Message) {}

func (c *Mem) finish(addr msg.Addr, t *memTrans) {
	t.timersOff()
	c.obs.TransactionEnd("mem", c.id, addr, t.req.tid)
	if len(t.queue) == 0 {
		c.trans.Free(addr)
		return
	}
	t.req = t.queue[0]
	t.queue = t.queue[1:]
	t.phase = memIdle
	c.service(addr, t)
}

func (c *Mem) send(m *msg.Message) {
	pm := msg.NewMessage()
	*pm = *m
	pm.Src = c.id
	c.net.Send(pm)
}

// InspectLines implements proto.Inspectable. Memory owns every line the
// chip has not claimed; while a DataEx it sent is unacknowledged, it
// reports itself as the (off-chip) backup.
func (c *Mem) InspectLines(fn func(proto.LineView)) {
	seen := make(map[msg.Addr]bool, len(c.owned))
	emit := func(addr msg.Addr) {
		if seen[addr] || c.topo.HomeMem(addr) != c.id {
			return
		}
		seen[addr] = true
		t := c.trans.Get(addr)
		backup := t != nil && t.phase == memWaitUnblock
		state := "chip"
		if !c.owned[addr] {
			state = "mem"
		}
		var sn msg.SerialNumber
		if t != nil {
			state = memStatePhaseName(c.owned[addr], t.phase)
			sn = t.req.sn
			if sn == 0 {
				sn = t.ackOSN
			}
		}
		fn(proto.LineView{
			Addr:      addr,
			Owner:     !c.owned[addr] || (t != nil && t.phase == memWaitAckBD),
			Backup:    backup,
			Transient: t != nil,
			Payload:   c.store.Read(addr),
			State:     state,
			SN:        sn,
		})
	}
	for addr := range c.owned {
		emit(addr)
	}
	c.store.ForEach(func(addr msg.Addr, _ msg.Payload) { emit(addr) })
}

// Owned reports whether the chip currently owns addr.
func (c *Mem) Owned(addr msg.Addr) bool { return c.owned[addr] }
