package core

// White-box tests driving the FtDirCMP L1 controller directly with a fake
// network: each test crafts the exact incoming messages and asserts the
// exact outgoing ones, isolating transitions that are hard to pin from
// system-level runs (stale-message tolerance, idempotent acknowledgments,
// ping answers).

import (
	"testing"

	"repro/internal/msg"
	"repro/internal/proto"
	"repro/internal/sim"
	"repro/internal/stats"
)

// fakeNet records sent messages.
type fakeNet struct {
	sent []*msg.Message
}

func (f *fakeNet) Send(m *msg.Message) { f.sent = append(f.sent, m) }

func (f *fakeNet) take() []*msg.Message {
	out := f.sent
	f.sent = nil
	return out
}

// lastOfType returns the most recent sent message of the given type.
func (f *fakeNet) lastOfType(t msg.Type) *msg.Message {
	for i := len(f.sent) - 1; i >= 0; i-- {
		if f.sent[i].Type == t {
			return f.sent[i]
		}
	}
	return nil
}

func testParams() proto.Params {
	return proto.Params{
		LineSize:           64,
		L1Size:             4 * 1024,
		L1Ways:             4,
		L2Size:             16 * 1024,
		L2Ways:             4,
		L1HitLatency:       1,
		L2HitLatency:       2,
		MemLatency:         10,
		MigratoryOpt:       true,
		SerialBits:         8,
		LostRequestTimeout: 1000,
		LostUnblockTimeout: 1500,
		LostAckBDTimeout:   1500,
		BackupTimeout:      2000,
	}
}

// testL1 builds an isolated L1 with a fake network.
func testL1(t *testing.T) (*L1, *fakeNet, *sim.Engine) {
	t.Helper()
	topo := proto.Topology{Tiles: 4, Mems: 2, LineSize: 64}
	engine := sim.NewEngine()
	net := &fakeNet{}
	run := stats.NewRun("FtDirCMP", "unit")
	l1, err := NewL1(topo.L1(0), topo, testParams(), engine, net, run, nil)
	if err != nil {
		t.Fatal(err)
	}
	return l1, net, engine
}

// fill gives the L1 the line in the requested state via a normal miss
// (avoiding white-box state surgery so the path under test is realistic).
func fill(t *testing.T, l *L1, net *fakeNet, engine *sim.Engine, addr msg.Addr, write bool) {
	t.Helper()
	done := false
	if write {
		l.Write(addr, 0xabc, func(proto.AccessResult) { done = true })
	} else {
		l.Read(addr, func(proto.AccessResult) { done = true })
	}
	req := net.lastOfType(msg.GetX)
	if !write {
		req = net.lastOfType(msg.GetS)
	}
	if req == nil {
		t.Fatal("no request issued")
	}
	home := l.topo.HomeL2(addr)
	typ := msg.Data
	if write {
		typ = msg.DataEx
	}
	net.take()
	l.Handle(&msg.Message{
		Type: typ, Src: home, Dst: l.id, Addr: addr, SN: req.SN,
		Payload: msg.Payload{Value: 1, Version: 1}, Dirty: write,
	})
	engine.RunUntil(1_000_000, func() bool { return done })
	if !done {
		t.Fatal("fill miss never completed")
	}
	// Complete the ownership handshake so the line is not blocked.
	if write {
		un := net.lastOfType(msg.UnblockEx)
		if un == nil || !un.PiggybackAckO {
			t.Fatalf("fill write did not piggyback AckO: %v", net.sent)
		}
		l.Handle(&msg.Message{Type: msg.AckBD, Src: home, Dst: l.id, Addr: addr, SN: un.SN})
	}
	net.take()
}

func TestL1StaleInvDoesNotKillOwnedLine(t *testing.T) {
	l, net, engine := testL1(t)
	const addr = 0x40
	fill(t, l, net, engine, addr, true) // M state
	// A stale invalidation from a superseded attempt arrives.
	l.Handle(&msg.Message{Type: msg.Inv, Src: l.topo.HomeL2(addr), Dst: l.id, Addr: addr, SN: 99, Requestor: 2})
	// The Ack is sent (harmless), the line survives.
	if ack := net.lastOfType(msg.Ack); ack == nil || ack.Dst != 2 || ack.SN != 99 {
		t.Fatalf("no echoing Ack: %v", net.sent)
	}
	if line := l.array.Lookup(addr); line == nil || !ownerState(line.State) {
		t.Fatal("stale Inv destroyed an owned line")
	}
}

func TestL1InvDropsSharedCopy(t *testing.T) {
	l, net, engine := testL1(t)
	const addr = 0x40
	fill(t, l, net, engine, addr, false)
	line := l.array.Lookup(addr)
	if line == nil {
		t.Fatal("fill failed")
	}
	line.State = StateS // the Data fill grants S only when sharers exist; force it
	l.Handle(&msg.Message{Type: msg.Inv, Src: l.topo.HomeL2(addr), Dst: l.id, Addr: addr, SN: 7, Requestor: 3})
	if l.array.Lookup(addr) != nil {
		t.Fatal("shared copy survived an Inv")
	}
	if ack := net.lastOfType(msg.Ack); ack == nil || ack.SN != 7 {
		t.Fatal("no Ack")
	}
}

func TestL1DuplicateAckOGetsAckBD(t *testing.T) {
	l, net, _ := testL1(t)
	// An AckO for a line with no backup: reply AckBD anyway (§3.4).
	l.Handle(&msg.Message{Type: msg.AckO, Src: 2, Dst: l.id, Addr: 0x40, SN: 5})
	bd := net.lastOfType(msg.AckBD)
	if bd == nil || bd.Dst != 2 || bd.SN != 5 {
		t.Fatalf("no idempotent AckBD: %v", net.sent)
	}
}

func TestL1OwnershipPingAnswers(t *testing.T) {
	l, net, engine := testL1(t)
	const addr = 0x40
	// No state at all: NackO.
	l.Handle(&msg.Message{Type: msg.OwnershipPing, Src: 2, Dst: l.id, Addr: addr, SN: 3})
	if n := net.lastOfType(msg.NackO); n == nil || n.SN != 3 {
		t.Fatalf("want NackO, got %v", net.sent)
	}
	net.take()
	// Owner: AckO.
	fill(t, l, net, engine, addr, true)
	l.Handle(&msg.Message{Type: msg.OwnershipPing, Src: 2, Dst: l.id, Addr: addr, SN: 4})
	if a := net.lastOfType(msg.AckO); a == nil {
		t.Fatalf("owner did not confirm ownership: %v", net.sent)
	}
}

func TestL1UnblockPingWithNothingAnswersUnblock(t *testing.T) {
	l, net, _ := testL1(t)
	// No MSHR, no line: the only consistent history is a silently evicted
	// shared copy — answer Unblock.
	l.Handle(&msg.Message{Type: msg.UnblockPing, Src: 6, Dst: l.id, Addr: 0x40, SN: 9})
	un := net.lastOfType(msg.Unblock)
	if un == nil || un.SN != 9 {
		t.Fatalf("want Unblock, got %v", net.sent)
	}
}

func TestL1UnblockPingOwnedLineAnswersUnblockEx(t *testing.T) {
	l, net, engine := testL1(t)
	const addr = 0x40
	fill(t, l, net, engine, addr, true)
	l.Handle(&msg.Message{Type: msg.UnblockPing, Src: l.topo.HomeL2(addr), Dst: l.id, Addr: addr, SN: 12})
	un := net.lastOfType(msg.UnblockEx)
	if un == nil {
		t.Fatalf("want UnblockEx, got %v", net.sent)
	}
}

func TestL1UnblockPingIgnoredForCurrentMiss(t *testing.T) {
	l, net, _ := testL1(t)
	const addr = 0x40
	l.Read(addr, func(proto.AccessResult) {})
	req := net.lastOfType(msg.GetS)
	net.take()
	// A ping carrying the current attempt's serial number: in progress.
	l.Handle(&msg.Message{Type: msg.UnblockPing, Src: l.topo.HomeL2(addr), Dst: l.id, Addr: addr, SN: req.SN})
	if len(net.take()) != 0 {
		t.Fatal("ping for the in-flight miss was answered")
	}
}

func TestL1UnblockPingForOldTransactionAnswered(t *testing.T) {
	l, net, engine := testL1(t)
	const addr = 0x40
	fill(t, l, net, engine, addr, false) // completed GetS (line E or S)
	l.array.Lookup(addr).State = StateS
	// A new write miss is outstanding...
	l.Write(addr, 9, func(proto.AccessResult) {})
	net.take()
	// ...but the ping names the old GetS attempt: it must be answered from
	// the line's current state.
	l.Handle(&msg.Message{Type: msg.UnblockPing, Src: l.topo.HomeL2(addr), Dst: l.id, Addr: addr, SN: 77})
	if un := net.lastOfType(msg.Unblock); un == nil || un.SN != 77 {
		t.Fatalf("old transaction's ping unanswered: %v", net.sent)
	}
}

func TestL1StaleDataDiscarded(t *testing.T) {
	l, net, _ := testL1(t)
	const addr = 0x40
	done := false
	l.Write(addr, 5, func(proto.AccessResult) { done = true })
	net.take()
	// A response with the wrong serial number must not complete the miss.
	l.Handle(&msg.Message{
		Type: msg.DataEx, Src: l.topo.HomeL2(addr), Dst: l.id, Addr: addr, SN: 123,
		Payload: msg.Payload{Value: 66, Version: 66},
	})
	if done {
		t.Fatal("stale response completed the miss")
	}
	if l.run.Proto.StaleSNDiscarded == 0 {
		t.Fatal("stale response not counted")
	}
}

func TestL1WbPingWithNoEntryCancels(t *testing.T) {
	l, net, _ := testL1(t)
	l.Handle(&msg.Message{Type: msg.WbPing, Src: 6, Dst: l.id, Addr: 0x40, SN: 4})
	wc := net.lastOfType(msg.WbCancel)
	if wc == nil || wc.Dst != 6 || wc.SN != 4 {
		t.Fatalf("want WbCancel, got %v", net.sent)
	}
}

func TestL1StaleForwardIgnored(t *testing.T) {
	l, net, _ := testL1(t)
	// A forwarded GetX for a line this cache has no trace of (transfer
	// completed long ago): silently ignored, counted.
	l.Handle(&msg.Message{
		Type: msg.GetX, Src: 6, Dst: l.id, Addr: 0x40, SN: 2,
		Forwarded: true, Requestor: 3,
	})
	if len(net.take()) != 0 {
		t.Fatal("stale forward was answered")
	}
	if l.run.Proto.StaleSNDiscarded == 0 {
		t.Fatal("stale forward not counted")
	}
}

func TestL1BlockedOwnershipDefersAndReplays(t *testing.T) {
	l, net, _ := testL1(t)
	const addr = 0x40
	done := false
	l.Write(addr, 5, func(proto.AccessResult) { done = true })
	req := net.lastOfType(msg.GetX)
	net.take()
	// Cache-to-cache data from node 2: standalone AckO expected.
	l.Handle(&msg.Message{
		Type: msg.DataEx, Src: 2, Dst: l.id, Addr: addr, SN: req.SN,
		Payload: msg.Payload{Value: 7, Version: 3}, Dirty: true,
	})
	if !done {
		t.Fatal("miss did not complete on data")
	}
	acko := net.lastOfType(msg.AckO)
	if acko == nil || acko.Dst != 2 {
		t.Fatalf("no standalone AckO to the previous owner: %v", net.sent)
	}
	net.take()

	// While blocked, a forward arrives: deferred.
	l.Handle(&msg.Message{
		Type: msg.GetX, Src: l.topo.HomeL2(addr), Dst: l.id, Addr: addr, SN: 50,
		Forwarded: true, Requestor: 3,
	})
	if len(net.take()) != 0 {
		t.Fatal("blocked line answered a forward")
	}

	// AckBD arrives: the deferred forward replays and ownership moves.
	l.Handle(&msg.Message{Type: msg.AckBD, Src: 2, Dst: l.id, Addr: addr, SN: acko.SN})
	if !l.engine.RunUntil(1000, func() bool { return net.lastOfType(msg.DataEx) != nil }) {
		t.Fatalf("deferred forward never replayed: %v", net.sent)
	}
	dx := net.lastOfType(msg.DataEx)
	if dx.Dst != 3 || dx.SN != 50 || dx.Payload.Version != 4 {
		t.Fatalf("replayed response wrong: %v", dx)
	}
}

func TestL1QuiescedLifecycle(t *testing.T) {
	l, net, engine := testL1(t)
	if !l.Quiesced() {
		t.Fatal("fresh L1 not quiesced")
	}
	l.Read(0x40, func(proto.AccessResult) {})
	if l.Quiesced() {
		t.Fatal("L1 with outstanding miss claims quiescence")
	}
	_ = net
	_ = engine
}
