package core

import (
	"testing"

	"repro/internal/proto"
)

func TestStateHelpers(t *testing.T) {
	if !ownerState(StateM) || !ownerState(StateE) || !ownerState(StateO) || ownerState(StateS) {
		t.Fatal("ownerState wrong")
	}
	if !writableState(StateM) || !writableState(StateE) || writableState(StateO) || writableState(StateS) {
		t.Fatal("writableState wrong")
	}
	if permOf(StateS) != proto.PermRead || permOf(StateO) != proto.PermRead {
		t.Fatal("read permissions wrong")
	}
	if permOf(StateE) != proto.PermWrite || permOf(StateM) != proto.PermWrite {
		t.Fatal("write permissions wrong")
	}
	if permOf(0) != proto.PermNone {
		t.Fatal("invalid state has permissions")
	}
	for _, s := range []int{StateS, StateE, StateM, StateO, 99} {
		if stateName(s) == "" {
			t.Fatalf("stateName(%d) empty", s)
		}
	}
}
