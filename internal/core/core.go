// Package core implements FtDirCMP, the paper's primary contribution: a
// directory-based MOESI cache coherence protocol that guarantees correct
// program execution even when the interconnection network loses messages
// due to transient faults (§3 of the paper).
//
// FtDirCMP extends the DirCMP baseline (package dircmp) with four
// mechanisms:
//
//  1. Reliable ownership transference (§3.1). Whenever owned data moves
//     between nodes, the sender keeps a backup copy (Backup state) until an
//     ownership acknowledgment (AckO) arrives, and the receiver holds the
//     line in a blocked-ownership state (Mb/Eb/Ob) — usable, but not
//     transferable — until the backup deletion acknowledgment (AckBD)
//     arrives. This guarantees that, for every line, there is always an
//     owner with the data, a backup copy, or both, and never more than one
//     of each. The AckO is piggybacked on the UnblockEx message whenever
//     the data came from the node the unblock goes to (L2→L1 and mem→L2
//     transfers), keeping the handshake off the critical path.
//
//  2. Fault detection by timeouts (§3.2–§3.4, Table 3):
//     - lost request: at the requester, from request issue until the miss
//     is satisfied; triggering reissues the request with a new serial
//     number. Also guards Put requests until their WbAck.
//     - lost unblock: at the responder (L2 or memory), from answering a
//     request until the Unblock/UnblockEx (or writeback data) arrives;
//     triggering sends an UnblockPing (or WbPing).
//     - lost backup deletion acknowledgment: at the AckO sender, until the
//     AckBD arrives; triggering resends the AckO with a new serial
//     number.
//     - backup (our conservative reading of OwnershipPing/NackO, see
//     DESIGN.md): a node stuck in Backup state pings the data receiver;
//     the receiver confirms ownership with AckO or denies it with NackO.
//
//  3. Request serial numbers (§3.5). Every request and response carries a
//     small serial number; responses that answer an old, superseded attempt
//     are discarded, preventing the Figure 2 incoherence.
//
//  4. Internally/externally blocked L2 states (§3.1.1). After an L2 miss,
//     the L2 forwards the data to the requesting L1 immediately, keeping an
//     in-chip backup, and delays its own UnblockEx+AckO to memory until the
//     L1's AckO arrives — so the memory round-trip of the ownership
//     handshake never lengthens the miss. While "externally blocked"
//     (waiting for memory's AckBD) the line can still move between L1s; it
//     only cannot be written back to memory.
//
// The controllers never assume a message arrives: every handler tolerates
// duplicates from reissues and discards stale serial numbers.
package core

import (
	"fmt"

	"repro/internal/proto"
)

// L1 stable line states (stored in cache.Line.State). Blocked-ownership
// (Mb/Eb/Ob) is the same base state plus an entry in the L1's blocked map;
// backup copies live in a dedicated backup buffer.
const (
	// StateS is shared, read-only.
	StateS = iota + 1
	// StateE is exclusive clean.
	StateE
	// StateM is modified.
	StateM
	// StateO is owned (read-only, responsible for the data).
	StateO
)

// L2 directory states.
const (
	// L2StateS: this bank owns the data; Sharers lists L1 copies.
	L2StateS = iota + 1
	// L2StateM: an L1 owns the line.
	L2StateM
)

func stateName(s int) string {
	switch s {
	case StateS:
		return "S"
	case StateE:
		return "E"
	case StateM:
		return "M"
	case StateO:
		return "O"
	default:
		return fmt.Sprintf("state(%d)", s)
	}
}

// stateNameMiss and stateNameBlocked return the interned "<state>+suffix"
// diagnostic names used by InspectLines. The checker inspects every line of
// every agent per run, so building these by concatenation would allocate
// per line.
func stateNameMiss(s int) string {
	switch s {
	case StateS:
		return "S+miss"
	case StateE:
		return "E+miss"
	case StateM:
		return "M+miss"
	case StateO:
		return "O+miss"
	default:
		return stateName(s) + "+miss"
	}
}

func stateNameBlocked(s int) string {
	switch s {
	case StateS:
		return "S+blocked"
	case StateE:
		return "E+blocked"
	case StateM:
		return "M+blocked"
	case StateO:
		return "O+blocked"
	default:
		return stateName(s) + "+blocked"
	}
}

func ownerState(s int) bool { return s == StateE || s == StateM || s == StateO }

func writableState(s int) bool { return s == StateE || s == StateM }

func permOf(s int) proto.Permission {
	switch s {
	case StateS, StateO:
		return proto.PermRead
	case StateE, StateM:
		return proto.PermWrite
	default:
		return proto.PermNone
	}
}

// protocolPanic reports a broken internal invariant. Unlike DirCMP, the
// fault-tolerant controllers only panic on states that are impossible even
// under arbitrary message loss — anything a fault can cause is handled or
// counted instead.
func protocolPanic(format string, args ...any) {
	panic("core: protocol invariant violated: " + fmt.Sprintf(format, args...))
}
