package core

// White-box tests for the FtDirCMP L2 bank: reissue re-answering, the
// WbData ownership handshake, the deferred memory unblock chain (§3.1.1)
// and the external-block discipline.

import (
	"testing"

	"repro/internal/msg"
	"repro/internal/proto"
	"repro/internal/sim"
	"repro/internal/stats"
)

// testL2 builds an isolated L2 bank (tile 0) with a fake network.
func testL2(t *testing.T) (*L2, *fakeNet, *sim.Engine, proto.Topology) {
	t.Helper()
	topo := proto.Topology{Tiles: 4, Mems: 2, LineSize: 64}
	engine := sim.NewEngine()
	net := &fakeNet{}
	run := stats.NewRun("FtDirCMP", "unit")
	l2, err := NewL2(topo.L2(0), topo, testParams(), engine, net, run)
	if err != nil {
		t.Fatal(err)
	}
	return l2, net, engine, topo
}

// addrForBank returns a line address homed at L2 bank 0 and memory 0.
func addrForBank(topo proto.Topology) msg.Addr {
	for line := uint64(0); ; line++ {
		addr := msg.Addr(line * uint64(topo.LineSize))
		if topo.HomeL2(addr) == topo.L2(0) && topo.HomeMem(addr) == topo.Mem(0) {
			return addr
		}
	}
}

// fetchLine walks the L2 through a memory fetch so the line is installed,
// granted to l1 and fully unblocked. Returns the address.
func fetchLine(t *testing.T, l *L2, net *fakeNet, topo proto.Topology, l1 msg.NodeID) msg.Addr {
	t.Helper()
	addr := addrForBank(topo)
	l.Handle(&msg.Message{Type: msg.GetX, Src: l1, Dst: l.id, Addr: addr, SN: 10})
	fetch := net.lastOfType(msg.GetX)
	if fetch == nil || fetch.Dst != topo.Mem(0) {
		t.Fatalf("no fetch to memory: %v", net.sent)
	}
	net.take()
	l.Handle(&msg.Message{
		Type: msg.DataEx, Src: topo.Mem(0), Dst: l.id, Addr: addr, SN: fetch.SN,
		Payload: msg.Payload{Value: 5, Version: 2},
	})
	grant := net.lastOfType(msg.DataEx)
	if grant == nil || grant.Dst != l1 || grant.SN != 10 {
		t.Fatalf("no immediate grant to the L1 (§3.1.1): %v", net.sent)
	}
	net.take()
	// The L1 unblocks with the piggybacked AckO.
	l.Handle(&msg.Message{Type: msg.UnblockEx, Src: l1, Dst: l.id, Addr: addr, SN: 10, PiggybackAckO: true})
	// The L2 must now answer AckBD to the L1 and send its own
	// UnblockEx+AckO to memory.
	if bd := net.lastOfType(msg.AckBD); bd == nil || bd.Dst != l1 {
		t.Fatalf("no AckBD to the L1: %v", net.sent)
	}
	memUn := net.lastOfType(msg.UnblockEx)
	if memUn == nil || memUn.Dst != topo.Mem(0) || !memUn.PiggybackAckO {
		t.Fatalf("no UnblockEx+AckO to memory: %v", net.sent)
	}
	net.take()
	// Memory's AckBD clears the external block.
	l.Handle(&msg.Message{Type: msg.AckBD, Src: topo.Mem(0), Dst: l.id, Addr: addr, SN: memUn.SN})
	if l.ext.Len() != 0 {
		t.Fatal("external block not cleared")
	}
	net.take()
	return addr
}

func TestL2FetchChainAndExternalBlock(t *testing.T) {
	l, net, _, topo := testL2(t)
	addr := fetchLine(t, l, net, topo, topo.L1(1))
	if !l.Quiesced() {
		t.Fatal("L2 not quiescent after the full chain")
	}
	line := l.array.Lookup(addr)
	if line == nil || line.State != L2StateM || line.Owner != topo.L1(1) {
		t.Fatalf("directory state wrong after grant: %+v", line)
	}
}

func TestL2ReissueResendsWbAck(t *testing.T) {
	l, net, _, topo := testL2(t)
	addr := fetchLine(t, l, net, topo, topo.L1(1))
	// The owner writes back.
	l.Handle(&msg.Message{Type: msg.Put, Src: topo.L1(1), Dst: l.id, Addr: addr, SN: 20})
	first := net.lastOfType(msg.WbAck)
	if first == nil || !first.WantData {
		t.Fatalf("no WbAck(WantData): %v", net.sent)
	}
	net.take()
	// The WbAck is lost; the L1 reissues the Put with a new serial number.
	l.Handle(&msg.Message{Type: msg.Put, Src: topo.L1(1), Dst: l.id, Addr: addr, SN: 21})
	second := net.lastOfType(msg.WbAck)
	if second == nil || second.SN != 21 || !second.WantData {
		t.Fatalf("reissued Put not re-answered: %v", net.sent)
	}
}

func TestL2WbDataTriggersAckOHandshake(t *testing.T) {
	l, net, _, topo := testL2(t)
	addr := fetchLine(t, l, net, topo, topo.L1(1))
	l.Handle(&msg.Message{Type: msg.Put, Src: topo.L1(1), Dst: l.id, Addr: addr, SN: 20})
	net.take()
	l.Handle(&msg.Message{
		Type: msg.WbData, Src: topo.L1(1), Dst: l.id, Addr: addr, SN: 20,
		Payload: msg.Payload{Value: 9, Version: 3}, Dirty: true,
	})
	acko := net.lastOfType(msg.AckO)
	if acko == nil || acko.Dst != topo.L1(1) || acko.SN != 20 {
		t.Fatalf("no AckO for the received ownership: %v", net.sent)
	}
	// The transaction stays open until the AckBD; a queued request waits.
	l.Handle(&msg.Message{Type: msg.GetS, Src: topo.L1(2), Dst: l.id, Addr: addr, SN: 30})
	net.take()
	l.Handle(&msg.Message{Type: msg.AckBD, Src: topo.L1(1), Dst: l.id, Addr: addr, SN: 20})
	// Now the queued GetS is serviced from the fresh L2 copy.
	grant := net.lastOfType(msg.DataEx) // no sharers -> exclusive grant
	if grant == nil || grant.Dst != topo.L1(2) || grant.Payload.Version != 3 {
		t.Fatalf("queued request not serviced after AckBD: %v", net.sent)
	}
}

func TestL2ReissueResendsDataExWithInvalidations(t *testing.T) {
	l, net, engine, topo := testL2(t)
	addr := fetchLine(t, l, net, topo, topo.L1(1)) // L1(1) owns in M
	// Two readers join: forwarded GetS, owner degrades to O, sharers grow.
	for i, sn := range []msg.SerialNumber{40, 41} {
		reader := topo.L1(2 + i)
		l.Handle(&msg.Message{Type: msg.GetS, Src: reader, Dst: l.id, Addr: addr, SN: sn})
		fwd := net.lastOfType(msg.GetS)
		if fwd == nil || fwd.Dst != topo.L1(1) || !fwd.Forwarded {
			t.Fatalf("reader %d not forwarded to the owner: %v", i, net.sent)
		}
		l.Handle(&msg.Message{Type: msg.Unblock, Src: reader, Dst: l.id, Addr: addr, SN: sn})
		net.take()
	}
	// The owner writes back; sharers {L1(2),L1(3)} remain, line becomes SS.
	l.Handle(&msg.Message{Type: msg.Put, Src: topo.L1(1), Dst: l.id, Addr: addr, SN: 20})
	net.take()
	l.Handle(&msg.Message{
		Type: msg.WbData, Src: topo.L1(1), Dst: l.id, Addr: addr, SN: 20,
		Payload: msg.Payload{Value: 9, Version: 3}, Dirty: true,
	})
	l.Handle(&msg.Message{Type: msg.AckBD, Src: topo.L1(1), Dst: l.id, Addr: addr, SN: 20})
	net.take()
	// A fourth L1 (tile 0) writes: DataEx with 2 invalidations.
	l.Handle(&msg.Message{Type: msg.GetX, Src: topo.L1(0), Dst: l.id, Addr: addr, SN: 50})
	if dx := net.lastOfType(msg.DataEx); dx == nil || dx.AckCount != 2 {
		t.Fatalf("grant wrong: %v", net.sent)
	}
	invs := 0
	for _, m := range net.take() {
		if m.Type == msg.Inv {
			if m.Requestor != topo.L1(0) || m.SN != 50 {
				t.Fatalf("bad Inv: %v", m)
			}
			invs++
		}
	}
	if invs != 2 {
		t.Fatalf("sent %d Invs, want 2", invs)
	}
	// Reissue: everything re-sent with the new serial number.
	l.Handle(&msg.Message{Type: msg.GetX, Src: topo.L1(0), Dst: l.id, Addr: addr, SN: 51})
	resent := net.take()
	var dx *msg.Message
	invs = 0
	for _, m := range resent {
		switch m.Type {
		case msg.DataEx:
			dx = m
		case msg.Inv:
			if m.SN != 51 {
				t.Fatalf("resent Inv with stale SN: %v", m)
			}
			invs++
		}
	}
	if dx == nil || dx.SN != 51 || dx.AckCount != 2 || invs != 2 {
		t.Fatalf("reissue not fully re-answered: %v", resent)
	}
	_ = engine
}

func TestL2UnblockPingFromMemory(t *testing.T) {
	l, net, _, topo := testL2(t)
	addr := addrForBank(topo)
	// Start a fetch and deliver the data, but do NOT let the L1 unblock:
	// the chain owes memory its unblock.
	l.Handle(&msg.Message{Type: msg.GetX, Src: topo.L1(1), Dst: l.id, Addr: addr, SN: 10})
	fetch := net.lastOfType(msg.GetX)
	net.take()
	l.Handle(&msg.Message{
		Type: msg.DataEx, Src: topo.Mem(0), Dst: l.id, Addr: addr, SN: fetch.SN,
		Payload: msg.Payload{Value: 5, Version: 2},
	})
	net.take()
	// Memory pings: the L1's AckO has not arrived, so the ping is ignored.
	l.Handle(&msg.Message{Type: msg.UnblockPing, Src: topo.Mem(0), Dst: l.id, Addr: addr, SN: fetch.SN})
	if len(net.take()) != 0 {
		t.Fatal("ping answered while the chain is still owed")
	}
	// The L1 completes; now a second ping is answered from the ext block.
	l.Handle(&msg.Message{Type: msg.UnblockEx, Src: topo.L1(1), Dst: l.id, Addr: addr, SN: 10, PiggybackAckO: true})
	net.take()
	l.Handle(&msg.Message{Type: msg.UnblockPing, Src: topo.Mem(0), Dst: l.id, Addr: addr, SN: fetch.SN})
	un := net.lastOfType(msg.UnblockEx)
	if un == nil || !un.PiggybackAckO || un.Dst != topo.Mem(0) {
		t.Fatalf("ext-blocked ping not answered with UnblockEx+AckO: %v", net.sent)
	}
}

func TestL2StaleMessagesCounted(t *testing.T) {
	l, net, _, topo := testL2(t)
	// A WbData with no transaction: stale, ignored.
	l.Handle(&msg.Message{Type: msg.WbData, Src: topo.L1(1), Dst: l.id, Addr: 0x999c0, SN: 3,
		Payload: msg.Payload{Value: 1, Version: 1}})
	// An AckBD from memory with no ext block: stale.
	l.Handle(&msg.Message{Type: msg.AckBD, Src: topo.Mem(0), Dst: l.id, Addr: 0x999c0, SN: 3})
	if l.run.Proto.StaleSNDiscarded < 2 {
		t.Fatalf("stale messages not counted: %d", l.run.Proto.StaleSNDiscarded)
	}
	if len(net.take()) != 0 {
		t.Fatal("stale messages were answered")
	}
}

func TestL2OwnershipPingFromMemoryConfirmed(t *testing.T) {
	l, net, _, topo := testL2(t)
	addr := fetchLine(t, l, net, topo, topo.L1(1))
	// A late OwnershipPing from memory after the chain completed: the L2
	// (whose line is present) confirms idempotently.
	l.Handle(&msg.Message{Type: msg.OwnershipPing, Src: topo.Mem(0), Dst: l.id, Addr: addr, SN: 8})
	if a := net.lastOfType(msg.AckO); a == nil || a.Dst != topo.Mem(0) {
		t.Fatalf("no confirmation: %v", net.sent)
	}
}
