package core

// White-box tests for the FtDirCMP memory controller.

import (
	"testing"

	"repro/internal/memctrl"
	"repro/internal/msg"
	"repro/internal/proto"
	"repro/internal/sim"
	"repro/internal/stats"
)

func testMem(t *testing.T) (*Mem, *fakeNet, *sim.Engine, proto.Topology) {
	t.Helper()
	topo := proto.Topology{Tiles: 4, Mems: 2, LineSize: 64}
	engine := sim.NewEngine()
	net := &fakeNet{}
	run := stats.NewRun("FtDirCMP", "unit")
	m := NewMem(topo.Mem(0), topo, testParams(), engine, net, run, memctrl.NewStore())
	return m, net, engine, topo
}

// runFor executes events for a bounded window; with re-arming ping timers
// the queue never drains, so unbounded Run(0) would spin forever.
func runFor(e *sim.Engine, cycles uint64) {
	limit := e.Now() + cycles
	e.RunUntil(limit, func() bool { return false })
}

// memAddr returns a line homed at memory controller 0.
func memAddr(topo proto.Topology) msg.Addr {
	for line := uint64(0); ; line++ {
		addr := msg.Addr(line * uint64(topo.LineSize))
		if topo.HomeMem(addr) == topo.Mem(0) {
			return addr
		}
	}
}

func TestMemFetchGrantAndUnblock(t *testing.T) {
	m, net, engine, topo := testMem(t)
	addr := memAddr(topo)
	l2 := topo.L2(0)
	m.Handle(&msg.Message{Type: msg.GetX, Src: l2, Dst: m.id, Addr: addr, SN: 7})
	// The DataEx is delayed by the access latency.
	if net.lastOfType(msg.DataEx) != nil {
		t.Fatal("data before the memory latency elapsed")
	}
	runFor(engine, 500)
	dx := net.lastOfType(msg.DataEx)
	if dx == nil || dx.Dst != l2 || dx.SN != 7 {
		t.Fatalf("grant wrong: %v", net.sent)
	}
	if !m.Owned(addr) {
		t.Fatal("ownership not recorded")
	}
	net.take()
	m.Handle(&msg.Message{Type: msg.UnblockEx, Src: l2, Dst: m.id, Addr: addr, SN: 7, PiggybackAckO: true})
	bd := net.lastOfType(msg.AckBD)
	if bd == nil || bd.Dst != l2 || bd.SN != 7 {
		t.Fatalf("piggybacked AckO unanswered: %v", net.sent)
	}
	if !m.Quiesced() {
		t.Fatal("transaction not closed")
	}
}

func TestMemReissuedFetchResendsData(t *testing.T) {
	m, net, engine, topo := testMem(t)
	addr := memAddr(topo)
	l2 := topo.L2(0)
	m.Handle(&msg.Message{Type: msg.GetX, Src: l2, Dst: m.id, Addr: addr, SN: 7})
	runFor(engine, 500)
	net.take()
	// The L2 reissues the fetch: the data is re-sent with the new number.
	m.Handle(&msg.Message{Type: msg.GetX, Src: l2, Dst: m.id, Addr: addr, SN: 8})
	dx := net.lastOfType(msg.DataEx)
	if dx == nil || dx.SN != 8 {
		t.Fatalf("reissued fetch unanswered: %v", net.sent)
	}
}

func TestMemWbDataHandshakeBlocksQueue(t *testing.T) {
	m, net, engine, topo := testMem(t)
	addr := memAddr(topo)
	l2 := topo.L2(0)
	// Give the chip the line first.
	m.Handle(&msg.Message{Type: msg.GetX, Src: l2, Dst: m.id, Addr: addr, SN: 7})
	runFor(engine, 500)
	m.Handle(&msg.Message{Type: msg.UnblockEx, Src: l2, Dst: m.id, Addr: addr, SN: 7, PiggybackAckO: true})
	net.take()
	// Eviction: Put, WbData.
	m.Handle(&msg.Message{Type: msg.Put, Src: l2, Dst: m.id, Addr: addr, SN: 9})
	wa := net.lastOfType(msg.WbAck)
	if wa == nil || !wa.WantData {
		t.Fatalf("no WbAck(WantData): %v", net.sent)
	}
	net.take()
	m.Handle(&msg.Message{
		Type: msg.WbData, Src: l2, Dst: m.id, Addr: addr, SN: 9,
		Payload: msg.Payload{Value: 3, Version: 5}, Dirty: true,
	})
	if a := net.lastOfType(msg.AckO); a == nil || a.SN != 9 {
		t.Fatalf("no AckO for the writeback: %v", net.sent)
	}
	if m.Owned(addr) {
		t.Fatal("ownership not returned")
	}
	net.take()
	// A refetch queued behind the open handshake must wait for the AckBD.
	m.Handle(&msg.Message{Type: msg.GetX, Src: l2, Dst: m.id, Addr: addr, SN: 11})
	runFor(engine, 500)
	if net.lastOfType(msg.DataEx) != nil {
		t.Fatal("refetch serviced while the backup handshake is open")
	}
	m.Handle(&msg.Message{Type: msg.AckBD, Src: l2, Dst: m.id, Addr: addr, SN: 9})
	runFor(engine, 500)
	dx := net.lastOfType(msg.DataEx)
	if dx == nil || dx.SN != 11 || dx.Payload.Version != 5 {
		t.Fatalf("queued refetch wrong: %v", net.sent)
	}
}

func TestMemStaleGetXAfterCloseAnswersWithoutStateChange(t *testing.T) {
	m, net, engine, topo := testMem(t)
	addr := memAddr(topo)
	l2 := topo.L2(0)
	m.Handle(&msg.Message{Type: msg.GetX, Src: l2, Dst: m.id, Addr: addr, SN: 7})
	runFor(engine, 500)
	m.Handle(&msg.Message{Type: msg.UnblockEx, Src: l2, Dst: m.id, Addr: addr, SN: 7, PiggybackAckO: true})
	net.take()
	// A superseded fetch attempt arrives after everything closed.
	m.Handle(&msg.Message{Type: msg.GetX, Src: l2, Dst: m.id, Addr: addr, SN: 6})
	dx := net.lastOfType(msg.DataEx)
	if dx == nil || dx.SN != 6 {
		t.Fatalf("stale fetch must be answered idempotently: %v", net.sent)
	}
	if !m.Owned(addr) || !m.Quiesced() {
		t.Fatal("stale fetch changed state")
	}
}

func TestMemOwnershipPingAnswers(t *testing.T) {
	m, net, engine, topo := testMem(t)
	addr := memAddr(topo)
	l2 := topo.L2(0)
	// Chip owns the line and pings (its WbData lost?): memory is still
	// waiting for the data → NackO.
	m.Handle(&msg.Message{Type: msg.GetX, Src: l2, Dst: m.id, Addr: addr, SN: 7})
	runFor(engine, 500)
	m.Handle(&msg.Message{Type: msg.UnblockEx, Src: l2, Dst: m.id, Addr: addr, SN: 7, PiggybackAckO: true})
	m.Handle(&msg.Message{Type: msg.Put, Src: l2, Dst: m.id, Addr: addr, SN: 9})
	net.take()
	m.Handle(&msg.Message{Type: msg.OwnershipPing, Src: l2, Dst: m.id, Addr: addr, SN: 2})
	if n := net.lastOfType(msg.NackO); n == nil {
		t.Fatalf("want NackO while waiting for WbData: %v", net.sent)
	}
	net.take()
	// After the data arrives, the same ping is confirmed.
	m.Handle(&msg.Message{
		Type: msg.WbData, Src: l2, Dst: m.id, Addr: addr, SN: 9,
		Payload: msg.Payload{Value: 3, Version: 5}, Dirty: true,
	})
	net.take()
	m.Handle(&msg.Message{Type: msg.OwnershipPing, Src: l2, Dst: m.id, Addr: addr, SN: 3})
	if a := net.lastOfType(msg.AckO); a == nil {
		t.Fatalf("want AckO after WbData: %v", net.sent)
	}
}

func TestMemStandaloneAckOAnswered(t *testing.T) {
	m, net, _, topo := testMem(t)
	m.Handle(&msg.Message{Type: msg.AckO, Src: topo.L2(0), Dst: m.id, Addr: memAddr(topo), SN: 4})
	bd := net.lastOfType(msg.AckBD)
	if bd == nil || bd.SN != 4 {
		t.Fatalf("standalone AckO unanswered: %v", net.sent)
	}
}
