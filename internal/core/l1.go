package core

import (
	"repro/internal/cache"
	"repro/internal/msg"
	"repro/internal/obs"
	"repro/internal/proto"
	"repro/internal/sim"
	"repro/internal/stats"
)

// l1Miss is an FtDirCMP L1 MSHR entry. Besides the baseline bookkeeping it
// carries the request serial number and the lost-request timer.
//
// owner/addr are back-references set at Alloc so the entry itself can be the
// argument of a package-level timer callback (Timer.StartCall); arming a
// timeout then allocates nothing.
type l1Miss struct {
	owner *L1
	addr  msg.Addr

	write    bool
	value    uint64
	issuedAt uint64

	tid msg.TID
	sn  msg.SerialNumber
	// snHistory lists every serial number this miss has used (initial plus
	// reissues). Drawing each attempt from the node's wrapping counter
	// keeps serial numbers unique per node across a full counter period,
	// which the paper requires per address (§3.5); the history lets the
	// UnblockPing handler decide whether a ping refers to this miss or to
	// an earlier, already-satisfied transaction on the same line.
	snHistory []msg.SerialNumber
	reqType   msg.Type
	timer     sim.Timer
	attempts  int

	dataArrived   bool
	exclusive     bool
	dirty         bool
	noPayload     bool
	payload       msg.Payload
	dataFrom      msg.NodeID
	ackCountKnown bool
	needAcks      int
	acksSeen      int

	done    func(proto.AccessResult)
	waiters []func()
}

// usedSN reports whether this miss has used sn in any of its attempts.
func (e *l1Miss) usedSN(sn msg.SerialNumber) bool {
	for _, s := range e.snHistory {
		if s == sn {
			return true
		}
	}
	return false
}

// l1WB is a writeback-buffer entry. Until the WbData is sent it holds the
// owned data (Put outstanding, lost-request timer running); after sending
// WbData it becomes a backup copy guarded by the backup timer until the
// L2's AckO arrives.
type l1WB struct {
	owner *L1
	addr  msg.Addr

	payload msg.Payload
	dirty   bool
	tid     msg.TID
	sn      msg.SerialNumber

	transferred bool // ownership answered a forwarded request instead
	sentData    bool // WbData sent; this entry is now a backup
	attempts    int

	putTimer    sim.Timer
	backupTimer sim.Timer
	waiters     []func()
}

// backupEntry is a backup copy kept after sending owned data to another L1
// (§3.1): retained until the new owner's AckO arrives, able to resend the
// data if the receiver reissues its request.
type backupEntry struct {
	owner *L1
	addr  msg.Addr

	payload  msg.Payload
	dirty    bool
	dest     msg.NodeID
	tid      msg.TID
	sn       msg.SerialNumber
	ackCount int
	timer    sim.Timer
}

// blockedEntry marks a line in a blocked-ownership state (Mb/Eb/Ob): we
// received owned data, sent the AckO, and may not transfer ownership until
// the AckBD arrives. Forwarded requests received meanwhile are deferred.
type blockedEntry struct {
	owner *L1
	addr  msg.Addr

	ackOTo msg.NodeID
	tid    msg.TID
	sn     msg.SerialNumber
	piggy  bool // the AckO rides the UnblockEx to the home L2
	timer  sim.Timer
	// deferred holds the newest forwarded request per requester, by value:
	// the network recycles delivered messages when the handler returns, so
	// anything kept for later replay must be copied out.
	deferred map[msg.NodeID]msg.Message
}

// L1 is an FtDirCMP level-1 cache controller.
type L1 struct {
	id     msg.NodeID
	topo   proto.Topology
	params proto.Params
	engine *sim.Engine
	net    proto.Sender
	run    *stats.Run

	array   *cache.Array
	mshr    *cache.Table[l1Miss]
	wb      *cache.Table[l1WB]
	backups *cache.Table[backupEntry]
	blocked *cache.Table[blockedEntry]
	serial  *msg.SerialSpace
	tids    proto.TIDSource
	onWrite proto.WriteObserver
	obs     *obs.Recorder

	// domains is the structural-fault failure detector (nil without
	// structural faults); halted is set when this tile dies.
	domains *proto.Domains
	halted  bool

	// victimFilter is the eviction predicate passed to cache.Array.Victim,
	// built once so the miss path does not allocate a closure per install.
	victimFilter func(*cache.Line) bool
}

var _ proto.L1Port = (*L1)(nil)
var _ proto.Inspectable = (*L1)(nil)

// NewL1 builds an FtDirCMP L1 controller. onWrite may be nil.
func NewL1(id msg.NodeID, topo proto.Topology, params proto.Params, engine *sim.Engine,
	net proto.Sender, run *stats.Run, onWrite proto.WriteObserver) (*L1, error) {
	arr, err := cache.NewArray(params.L1Size, params.L1Ways, params.LineSize)
	if err != nil {
		return nil, err
	}
	l := &L1{
		id:      id,
		topo:    topo,
		params:  params,
		engine:  engine,
		net:     net,
		run:     run,
		array:   arr,
		mshr:    cache.NewTableReset[l1Miss](params.MSHRs, resetL1Miss),
		wb:      cache.NewTableReset[l1WB](0, resetL1WB),
		backups: cache.NewTableReset[backupEntry](0, resetBackup),
		blocked: cache.NewTableReset[blockedEntry](0, resetBlocked),
		serial:  msg.NewSerialSpace(params.SerialBits),
		tids:    proto.NewTIDSource(id),
		onWrite: onWrite,
	}
	l.victimFilter = func(c *cache.Line) bool {
		return l.mshr.Get(c.Addr) == nil && l.wb.Get(c.Addr) == nil && l.blocked.Get(c.Addr) == nil
	}
	return l, nil
}

// Reset hooks for the recycled entry tables. Each one stops the entry's
// timers (stale firings from the previous life are then discarded by epoch)
// and carries the timers over, along with any other capacity-bearing field
// whose contents cannot outlive the entry. The waiters slices are NOT
// reused: completion paths capture the slice before Free and drain it after,
// so a recycled backing array could be appended to before the drain runs.

func resetL1Miss(e *l1Miss) {
	e.timer.Stop()
	*e = l1Miss{timer: e.timer, snHistory: e.snHistory[:0]}
}

func resetL1WB(w *l1WB) {
	w.putTimer.Stop()
	w.backupTimer.Stop()
	*w = l1WB{putTimer: w.putTimer, backupTimer: w.backupTimer}
}

func resetBackup(b *backupEntry) {
	b.timer.Stop()
	*b = backupEntry{timer: b.timer}
}

func resetBlocked(b *blockedEntry) {
	b.timer.Stop()
	clear(b.deferred)
	*b = blockedEntry{timer: b.timer, deferred: b.deferred}
}

// NodeID implements proto.Inspectable.
func (l *L1) NodeID() msg.NodeID { return l.id }

// SetObserver attaches the structured event recorder (see internal/obs).
func (l *L1) SetObserver(o *obs.Recorder) { l.obs = o }

// SetDomains attaches the structural-fault domain tracker.
func (l *L1) SetDomains(d *proto.Domains) { l.domains = d }

// homeL2 is the directory home for addr, re-homed around declared-dead
// banks when structural faults are active.
func (l *L1) homeL2(addr msg.Addr) msg.NodeID {
	if l.domains != nil {
		return l.domains.HomeL2(addr)
	}
	return l.topo.HomeL2(addr)
}

// Halt permanently silences this controller (its tile died): all timers
// stop and every future access, message or callback is ignored. The fault
// injector separately guarantees nothing this node sent after the death
// instant is delivered.
func (l *L1) Halt() {
	l.halted = true
	l.mshr.ForEach(func(_ msg.Addr, e *l1Miss) { e.timer.Stop() })
	l.wb.ForEach(func(_ msg.Addr, w *l1WB) { w.putTimer.Stop(); w.backupTimer.Stop() })
	l.backups.ForEach(func(_ msg.Addr, b *backupEntry) { b.timer.Stop() })
	l.blocked.ForEach(func(_ msg.Addr, b *blockedEntry) { b.timer.Stop() })
}

// Halted reports whether the tile died.
func (l *L1) Halted() bool { return l.halted }

// Quiesced implements proto.L1Port: no misses, writebacks, backups or
// ownership handshakes in flight.
func (l *L1) Quiesced() bool {
	return l.mshr.Len() == 0 && l.wb.Len() == 0 && l.backups.Len() == 0 && l.blocked.Len() == 0
}

// Read implements proto.L1Port.
func (l *L1) Read(addr msg.Addr, done func(proto.AccessResult)) {
	if l.halted {
		return
	}
	addr = l.topo.LineAddr(addr)
	if line := l.array.Lookup(addr); line != nil && l.mshr.Get(addr) == nil {
		l.array.Touch(line)
		l.run.Proto.ReadHits++
		res := proto.AccessResult{
			Hit:     true,
			Value:   line.Payload.Value,
			Version: line.Payload.Version,
			Latency: l.params.L1HitLatency,
		}
		proto.DeferResult(l.engine, l.params.L1HitLatency, done, res)
		return
	}
	if l.defer_(addr, func() { l.Read(addr, done) }) {
		return
	}
	l.run.Proto.ReadMisses++
	l.startMiss(addr, false, 0, done)
}

// Write implements proto.L1Port.
func (l *L1) Write(addr msg.Addr, value uint64, done func(proto.AccessResult)) {
	if l.halted {
		return
	}
	addr = l.topo.LineAddr(addr)
	if line := l.array.Lookup(addr); line != nil && l.mshr.Get(addr) == nil && writableState(line.State) {
		l.array.Touch(line)
		if line.State == StateE {
			line.State = StateM
		}
		line.Dirty = true
		line.Payload.Value = value
		line.Payload.Version++
		if l.onWrite != nil {
			l.onWrite(addr, line.Payload.Version, value)
		}
		l.run.Proto.WriteHits++
		res := proto.AccessResult{
			Hit:     true,
			Value:   value,
			Version: line.Payload.Version,
			Latency: l.params.L1HitLatency,
		}
		proto.DeferResult(l.engine, l.params.L1HitLatency, done, res)
		return
	}
	if l.defer_(addr, func() { l.Write(addr, value, done) }) {
		return
	}
	l.run.Proto.WriteMisses++
	l.startMiss(addr, true, value, done)
}

func (l *L1) defer_(addr msg.Addr, retry func()) bool {
	if e := l.mshr.Get(addr); e != nil {
		e.waiters = append(e.waiters, retry)
		return true
	}
	if w := l.wb.Get(addr); w != nil {
		w.waiters = append(w.waiters, retry)
		return true
	}
	return false
}

// startMiss allocates an MSHR, picks a serial number and issues the
// request, arming the lost-request timeout.
func (l *L1) startMiss(addr msg.Addr, write bool, value uint64, done func(proto.AccessResult)) {
	e := l.mshr.Alloc(addr)
	if e == nil {
		l.engine.Schedule(1, func() {
			if write {
				l.Write(addr, value, done)
			} else {
				l.Read(addr, done)
			}
		})
		return
	}
	e.owner = l
	e.addr = addr
	e.write = write
	e.value = value
	e.issuedAt = l.engine.Now()
	e.done = done
	e.tid = l.tids.Next()
	e.sn = l.serial.Next()
	e.snHistory = append(e.snHistory, e.sn)
	e.reqType = msg.GetS
	if write {
		e.reqType = msg.GetX
	}
	e.timer.Bind(l.engine)
	l.send(&msg.Message{Type: e.reqType, Dst: l.homeL2(addr), Addr: addr, SN: e.sn, TID: e.tid})
	l.armLostRequest(addr, e)
}

// armLostRequest starts (or restarts) the lost-request timeout: when it
// fires, the request is reissued with a new serial number (§3.2).
func (l *L1) armLostRequest(addr msg.Addr, e *l1Miss) {
	e.timer.StartCall(sim.Backoff(l.params.LostRequestTimeout, e.attempts), lostRequestFired, e)
}

func lostRequestFired(arg any) {
	e := arg.(*l1Miss)
	l, addr := e.owner, e.addr
	if l.mshr.Get(addr) != e {
		return
	}
	if l.domains.MaybeDeclareDead(l.homeL2(addr)) {
		// The home died: park the miss (keep the timer armed) and let the
		// directory reconstruction reissue it toward the new home.
		l.armLostRequest(addr, e)
		return
	}
	l.run.Proto.LostRequestTimeouts++
	l.run.Proto.RequestsReissued++
	l.obs.TimeoutFired("l1", l.id, addr, e.tid, obs.TimeoutLostRequest)
	e.attempts++
	oldSN := e.sn
	e.sn = l.serial.Next()
	l.obs.Reissue("l1", l.id, addr, e.tid, e.reqType, oldSN, e.sn)
	if len(e.snHistory) < l.serial.Width() {
		e.snHistory = append(e.snHistory, e.sn)
	}
	// Responses to the old attempt will be discarded by serial number;
	// restart this attempt's bookkeeping from scratch.
	e.dataArrived = false
	e.exclusive = false
	e.noPayload = false
	e.ackCountKnown = false
	e.needAcks = 0
	e.acksSeen = 0
	l.send(&msg.Message{Type: e.reqType, Dst: l.homeL2(addr), Addr: addr, SN: e.sn, TID: e.tid})
	l.armLostRequest(addr, e)
}

// Handle processes a delivered network message.
func (l *L1) Handle(m *msg.Message) {
	if l.halted || l.domains.Declared(m.Src) {
		// Dead tiles process nothing; survivors discard stragglers from
		// declared-dead nodes so post-reconstruction state stays clean.
		return
	}
	switch m.Type {
	case msg.Data:
		l.handleData(m, false)
	case msg.DataEx:
		l.handleData(m, true)
	case msg.Ack:
		l.handleAck(m)
	case msg.Inv:
		l.handleInv(m)
	case msg.GetS, msg.GetX:
		l.handleFwd(m)
	case msg.WbAck:
		l.handleWbAck(m)
	case msg.AckO:
		l.handleAckO(m)
	case msg.AckBD:
		l.handleAckBD(m)
	case msg.UnblockPing:
		l.handleUnblockPing(m)
	case msg.WbPing:
		l.handleWbPing(m)
	case msg.OwnershipPing:
		l.handleOwnershipPing(m)
	case msg.NackO:
		l.handleNackO(m)
	default:
		protocolPanic("L1 %d received unexpected %v", l.id, m)
	}
}

func (l *L1) handleData(m *msg.Message, exclusive bool) {
	e := l.mshr.Get(m.Addr)
	if e == nil || m.SN != e.sn {
		l.stale(e != nil)
		return
	}
	e.dataArrived = true
	e.exclusive = exclusive
	e.dirty = m.Dirty
	e.noPayload = m.NoPayload
	e.dataFrom = m.Src
	if !m.NoPayload {
		e.payload = m.Payload
	}
	if exclusive {
		e.ackCountKnown = true
		e.needAcks = m.AckCount
	}
	l.tryComplete(m.Addr, e)
}

func (l *L1) handleAck(m *msg.Message) {
	e := l.mshr.Get(m.Addr)
	if e == nil || m.SN != e.sn {
		l.stale(e != nil)
		return
	}
	e.acksSeen++
	l.tryComplete(m.Addr, e)
}

// handleInv drops a shared copy. Owned lines are never invalidated this way
// (a stale Inv from a superseded attempt must not destroy the only copy);
// the Ack is always sent and carries the Inv's serial number so the
// requester can discard it if it belongs to an old attempt.
func (l *L1) handleInv(m *msg.Message) {
	if line := l.array.Lookup(m.Addr); line != nil && !ownerState(line.State) {
		line.Valid = false
		l.obs.StateChange("l1", l.id, m.Addr, m.TID, stateName(line.State), "I")
	}
	l.send(&msg.Message{Type: msg.Ack, Dst: m.Requestor, Addr: m.Addr, SN: m.SN, TID: m.TID})
}

// handleFwd serves a request forwarded by the directory. Ownership leaves
// this cache on GetX and migratory GetS, creating a backup; plain GetS
// degrades M/E to O and keeps ownership here.
func (l *L1) handleFwd(m *msg.Message) {
	addr := m.Addr
	if b := l.blocked.Get(addr); b != nil {
		// Blocked ownership: we may not transfer the line until the AckBD
		// arrives; remember the newest forward per requester.
		if b.deferred == nil {
			b.deferred = make(map[msg.NodeID]msg.Message, 1)
		}
		b.deferred[m.Requestor] = *m
		return
	}

	transfer := m.Type == msg.GetX || m.Migratory

	if line := l.array.Lookup(addr); line != nil && ownerState(line.State) {
		l.run.Proto.CacheToCacheTransfers++
		if !transfer {
			if line.State != StateO {
				l.obs.StateChange("l1", l.id, addr, m.TID, stateName(line.State), stateName(StateO))
			}
			line.State = StateO
			l.send(&msg.Message{
				Type: msg.Data, Dst: m.Requestor, Addr: addr, SN: m.SN, TID: m.TID,
				Payload: line.Payload, Dirty: line.Dirty,
			})
			return
		}
		l.obs.StateChange("l1", l.id, addr, m.TID, stateName(line.State), "I")
		l.sendOwned(addr, m, line.Payload, line.Dirty || line.State == StateM)
		line.Valid = false
		return
	}

	if w := l.wb.Get(addr); w != nil && !w.transferred && !w.sentData {
		// Put outstanding: the data still lives in the writeback buffer.
		l.run.Proto.CacheToCacheTransfers++
		if !transfer {
			// Serve the read but keep ownership (the eventual WbData will
			// still carry the data to the L2).
			l.send(&msg.Message{
				Type: msg.Data, Dst: m.Requestor, Addr: addr, SN: m.SN, TID: m.TID,
				Payload: w.payload, Dirty: w.dirty,
			})
			return
		}
		w.transferred = true
		l.sendOwned(addr, m, w.payload, w.dirty)
		return
	}

	if b := l.backups.Get(addr); b != nil {
		// We are the backup for this transfer; a reissued forward means the
		// previous data message was lost (§3.2) — resend with the new
		// serial number.
		if m.Requestor == b.dest {
			b.tid = m.TID
			b.sn = m.SN
			b.ackCount = m.AckCount
			l.send(&msg.Message{
				Type: msg.DataEx, Dst: b.dest, Addr: addr, SN: b.sn, TID: b.tid,
				Payload: b.payload, Dirty: true, AckCount: b.ackCount,
			})
			l.armBackup(addr, b)
			return
		}
		l.stale(false)
		return
	}

	// The transfer already completed (our backup was deleted after the
	// receiver's AckO): this forward is a stale duplicate.
	l.stale(false)
}

// sendOwned transmits owned data in response to a forwarded request and
// installs the backup entry that guards the transfer.
func (l *L1) sendOwned(addr msg.Addr, m *msg.Message, payload msg.Payload, dirty bool) {
	b := l.backups.Get(addr)
	if b == nil {
		b = l.backups.Alloc(addr)
		b.owner = l
		b.addr = addr
		b.timer.Bind(l.engine)
		l.obs.BackupCreated("l1", l.id, addr, m.TID, m.Requestor)
	}
	b.payload = payload
	b.dirty = dirty
	b.dest = m.Requestor
	b.tid = m.TID
	b.sn = m.SN
	b.ackCount = m.AckCount
	l.send(&msg.Message{
		Type: msg.DataEx, Dst: b.dest, Addr: addr, SN: b.sn, TID: b.tid,
		Payload: payload, Dirty: true, AckCount: b.ackCount,
	})
	l.armBackup(addr, b)
}

// armBackup starts the backup timeout: a node stuck holding a backup pings
// the receiver to learn whether the ownership transfer completed.
func (l *L1) armBackup(addr msg.Addr, b *backupEntry) {
	b.timer.StartCall(l.params.BackupTimeout, backupFired, b)
}

func backupFired(arg any) {
	b := arg.(*backupEntry)
	l, addr := b.owner, b.addr
	if l.backups.Get(addr) != b {
		return
	}
	if l.domains.MaybeDeclareDead(b.dest) {
		// The transfer target died holding the only up-to-date copy path;
		// park — reconstruction decides from the surviving backup.
		l.armBackup(addr, b)
		return
	}
	l.run.Proto.BackupTimeouts++
	l.obs.TimeoutFired("l1", l.id, addr, b.tid, obs.TimeoutBackup)
	l.send(&msg.Message{Type: msg.OwnershipPing, Dst: b.dest, Addr: addr, SN: l.serial.Next(), TID: b.tid})
	l.armBackup(addr, b)
}

// handleWbAck performs the second writeback phase. Sending WbData starts an
// ownership transfer to the L2, so the entry becomes a backup until the
// L2's AckO arrives.
func (l *L1) handleWbAck(m *msg.Message) {
	w := l.wb.Get(m.Addr)
	if w == nil || w.sentData {
		l.stale(false)
		return
	}
	w.putTimer.Stop()
	if m.WantData && !w.transferred {
		l.sendWbData(m.Addr, w, m.SN)
		return
	}
	l.send(&msg.Message{Type: msg.WbNoData, Dst: m.Src, Addr: m.Addr, SN: m.SN, TID: w.tid})
	l.freeWB(m.Addr, w)
}

// sendWbData transmits the writeback data and arms the backup timer: the
// entry is now the backup for an ownership transfer to the L2.
func (l *L1) sendWbData(addr msg.Addr, w *l1WB, sn msg.SerialNumber) {
	w.sentData = true
	w.sn = sn
	l.obs.BackupCreated("l1", l.id, addr, w.tid, l.homeL2(addr))
	l.send(&msg.Message{
		Type: msg.WbData, Dst: l.homeL2(addr), Addr: addr, SN: sn, TID: w.tid,
		Payload: w.payload, Dirty: w.dirty,
	})
	w.backupTimer.Bind(l.engine)
	l.armWbBackup(addr, w)
}

// armWbBackup pings the L2 if the AckO for our WbData never arrives.
func (l *L1) armWbBackup(addr msg.Addr, w *l1WB) {
	w.backupTimer.StartCall(l.params.BackupTimeout, wbBackupFired, w)
}

func wbBackupFired(arg any) {
	w := arg.(*l1WB)
	l, addr := w.owner, w.addr
	if l.wb.Get(addr) != w {
		return
	}
	if l.domains.MaybeDeclareDead(l.homeL2(addr)) {
		l.armWbBackup(addr, w)
		return
	}
	l.run.Proto.BackupTimeouts++
	l.obs.TimeoutFired("l1", l.id, addr, w.tid, obs.TimeoutBackup)
	l.send(&msg.Message{Type: msg.OwnershipPing, Dst: l.homeL2(addr), Addr: addr, SN: l.serial.Next(), TID: w.tid})
	l.armWbBackup(addr, w)
}

// handleAckO deletes our backup (the transfer completed) and returns the
// backup deletion acknowledgment. A node with no backup answers AckBD
// anyway: the AckO was a duplicate from a false-positive timeout (§3.4).
func (l *L1) handleAckO(m *msg.Message) {
	if b := l.backups.Get(m.Addr); b != nil && m.Src == b.dest {
		b.timer.Stop()
		tid := b.tid // Free recycles the entry; read before, use after
		l.backups.Free(m.Addr)
		l.obs.BackupDeleted("l1", l.id, m.Addr, tid)
		l.send(&msg.Message{Type: msg.AckBD, Dst: m.Src, Addr: m.Addr, SN: m.SN, TID: m.TID})
		return
	}
	if w := l.wb.Get(m.Addr); w != nil && w.sentData {
		l.obs.BackupDeleted("l1", l.id, m.Addr, w.tid)
		l.freeWB(m.Addr, w)
		l.send(&msg.Message{Type: msg.AckBD, Dst: m.Src, Addr: m.Addr, SN: m.SN, TID: m.TID})
		return
	}
	l.send(&msg.Message{Type: msg.AckBD, Dst: m.Src, Addr: m.Addr, SN: m.SN, TID: m.TID})
}

// handleAckBD leaves the blocked-ownership state and replays any deferred
// forwarded requests.
func (l *L1) handleAckBD(m *msg.Message) {
	b := l.blocked.Get(m.Addr)
	if b == nil {
		l.stale(false)
		return
	}
	if m.SN != b.sn {
		// An AckBD answering a superseded AckO: discard (§3.4).
		l.run.Proto.StaleSNDiscarded++
		l.run.Proto.FalsePositives++
		return
	}
	b.timer.Stop()
	tid := b.tid
	for _, fwd := range b.deferred {
		fwd := fwd
		l.engine.Schedule(0, func() { l.Handle(&fwd) })
	}
	l.blocked.Free(m.Addr)
	l.obs.TransactionEnd("l1", l.id, m.Addr, tid)
}

// handleUnblockPing re-sends the unblock for an already-satisfied miss; if
// the miss is still in progress the ping is ignored (§3.3). A live MSHR for
// the same address does not by itself mean the ping's miss is unresolved: a
// later access may have started a new transaction (e.g. an upgrade after a
// completed GetS whose Unblock was lost). The ping's serial number tells
// the transactions apart: it refers to the current miss only if it falls in
// the range of serial numbers this miss has used (§3.5).
func (l *L1) handleUnblockPing(m *msg.Message) {
	addr := m.Addr
	if e := l.mshr.Get(addr); e != nil && e.usedSN(m.SN) {
		return
	}
	home := l.homeL2(addr)
	if b := l.blocked.Get(addr); b != nil && b.piggy {
		// The original UnblockEx carried the AckO; the resend must too.
		l.run.Proto.AcksOSent++
		l.run.Proto.PiggybackedAcksO++
		l.send(&msg.Message{Type: msg.UnblockEx, Dst: home, Addr: addr, SN: b.sn, TID: b.tid, PiggybackAckO: true})
		return
	}
	line := l.array.Lookup(addr)
	switch {
	case line != nil && ownerState(line.State):
		l.send(&msg.Message{Type: msg.UnblockEx, Dst: home, Addr: addr, SN: m.SN, TID: m.TID})
	case line != nil:
		l.send(&msg.Message{Type: msg.Unblock, Dst: home, Addr: addr, SN: m.SN, TID: m.TID})
	case l.wb.Get(addr) != nil:
		l.send(&msg.Message{Type: msg.UnblockEx, Dst: home, Addr: addr, SN: m.SN, TID: m.TID})
	default:
		// The only way the line can be gone without a trace is a silent
		// eviction of a shared copy.
		l.send(&msg.Message{Type: msg.Unblock, Dst: home, Addr: addr, SN: m.SN, TID: m.TID})
	}
}

// handleWbPing answers the L2's query about a writeback in progress: resend
// the data if we still have it, WbCancel if the writeback already finished
// or ownership moved elsewhere (§3.3).
func (l *L1) handleWbPing(m *msg.Message) {
	w := l.wb.Get(m.Addr)
	switch {
	case w == nil:
		l.send(&msg.Message{Type: msg.WbCancel, Dst: m.Src, Addr: m.Addr, SN: m.SN, TID: m.TID})
	case w.transferred:
		l.send(&msg.Message{Type: msg.WbCancel, Dst: m.Src, Addr: m.Addr, SN: m.SN, TID: m.TID})
		l.freeWB(m.Addr, w)
	case w.sentData:
		w.sn = m.SN
		l.send(&msg.Message{
			Type: msg.WbData, Dst: m.Src, Addr: m.Addr, SN: m.SN, TID: w.tid,
			Payload: w.payload, Dirty: w.dirty,
		})
	default:
		// Our Put's WbAck was lost; the ping proves the L2 is waiting for
		// the data, so send it now.
		w.putTimer.Stop()
		l.sendWbData(m.Addr, w, m.SN)
	}
}

// handleOwnershipPing confirms (AckO) or denies (NackO) that we received
// ownership of the line, letting a stuck backup node make progress.
func (l *L1) handleOwnershipPing(m *msg.Message) {
	if b := l.blocked.Get(m.Addr); b != nil && b.ackOTo == m.Src {
		l.run.Proto.AcksOSent++
		l.send(&msg.Message{Type: msg.AckO, Dst: m.Src, Addr: m.Addr, SN: b.sn, TID: b.tid})
		return
	}
	if line := l.array.Lookup(m.Addr); line != nil && ownerState(line.State) {
		l.run.Proto.AcksOSent++
		l.send(&msg.Message{Type: msg.AckO, Dst: m.Src, Addr: m.Addr, SN: m.SN, TID: m.TID})
		return
	}
	l.send(&msg.Message{Type: msg.NackO, Dst: m.Src, Addr: m.Addr, SN: m.SN, TID: m.TID})
}

// handleNackO restarts the backup timer: the receiver does not have the
// data yet; recovery is driven by its own lost-request reissue.
func (l *L1) handleNackO(m *msg.Message) {
	if b := l.backups.Get(m.Addr); b != nil {
		l.armBackup(m.Addr, b)
	}
}

// tryComplete finishes the miss once data and acks are in.
func (l *L1) tryComplete(addr msg.Addr, e *l1Miss) {
	if l.halted {
		return
	}
	if !e.dataArrived {
		return
	}
	if e.ackCountKnown && e.acksSeen < e.needAcks {
		return
	}
	if e.write && !e.ackCountKnown {
		return
	}

	var state int
	switch {
	case e.write:
		state = StateM
	case e.exclusive && e.dirty:
		state = StateM
	case e.exclusive:
		state = StateE
	default:
		state = StateS
	}

	payload := e.payload
	if e.noPayload {
		line := l.array.Lookup(addr)
		if line == nil {
			protocolPanic("L1 %d dataless grant for %#x without a local copy", l.id, addr)
		}
		payload = line.Payload
	}
	if e.write {
		payload.Value = e.value
		payload.Version++
	}

	dirty := e.dirty || e.write
	if l.install(addr, state, payload, dirty, e.tid) == nil {
		// Every way in the set is pinned by an in-flight transaction; retry
		// until a victim frees up.
		l.engine.ScheduleCall(4, tryCompleteRetry, e, 0)
		return
	}
	if e.write && l.onWrite != nil {
		l.onWrite(addr, payload.Version, payload.Value)
	}
	e.timer.Stop()

	// Ownership moved to us on any DataEx that carried the data (a
	// dataless grant means we already owned the line): enter the
	// blocked-ownership state and acknowledge (§3.1).
	home := l.homeL2(addr)
	transfer := e.exclusive && !e.noPayload
	if transfer {
		b := l.blocked.Alloc(addr)
		b.owner = l
		b.addr = addr
		b.ackOTo = e.dataFrom
		b.tid = e.tid
		b.sn = e.sn
		b.piggy = e.dataFrom == home && !l.params.DisablePiggyback
		b.timer.Bind(l.engine)
		l.run.Proto.AcksOSent++
		if b.piggy {
			l.run.Proto.PiggybackedAcksO++
			l.send(&msg.Message{Type: msg.UnblockEx, Dst: home, Addr: addr, SN: e.sn, TID: e.tid, PiggybackAckO: true})
		} else {
			l.send(&msg.Message{Type: msg.UnblockEx, Dst: home, Addr: addr, SN: e.sn, TID: e.tid})
			l.send(&msg.Message{Type: msg.AckO, Dst: e.dataFrom, Addr: addr, SN: e.sn, TID: e.tid})
		}
		l.armLostAckBD(addr, b)
	} else {
		unblock := msg.Unblock
		if e.exclusive || e.write {
			unblock = msg.UnblockEx
		}
		l.send(&msg.Message{Type: unblock, Dst: home, Addr: addr, SN: e.sn, TID: e.tid})
	}

	latency := l.engine.Now() - e.issuedAt
	l.run.Proto.MissLatency(latency)
	res := proto.AccessResult{
		Value:   payload.Value,
		Version: payload.Version,
		Latency: latency,
	}
	done := e.done
	waiters := e.waiters
	tid := e.tid // Free recycles the entry; read before, use after
	l.mshr.Free(addr)
	l.obs.TransactionEnd("l1", l.id, addr, tid)
	if done != nil {
		done(res)
	}
	l.wake(waiters)
}

// tryCompleteRetry re-runs tryComplete after a failed install. The MSHR
// check guards against the entry having completed (and possibly been
// recycled for a new miss on the same line) in the meantime.
func tryCompleteRetry(arg any, _ uint64) {
	e := arg.(*l1Miss)
	l := e.owner
	if l.mshr.Get(e.addr) != e {
		return
	}
	l.tryComplete(e.addr, e)
}

// armLostAckBD starts the lost backup deletion acknowledgment timeout: on
// firing, the AckO is reissued with a new serial number (§3.4).
func (l *L1) armLostAckBD(addr msg.Addr, b *blockedEntry) {
	b.timer.StartCall(l.params.LostAckBDTimeout, lostAckBDFired, b)
}

func lostAckBDFired(arg any) {
	b := arg.(*blockedEntry)
	l, addr := b.owner, b.addr
	if l.blocked.Get(addr) != b {
		return
	}
	if l.domains.MaybeDeclareDead(b.ackOTo) {
		// The backup holder died; reconstruction clears the blocked state.
		l.armLostAckBD(addr, b)
		return
	}
	l.run.Proto.LostAckBDTimeouts++
	l.obs.TimeoutFired("l1", l.id, addr, b.tid, obs.TimeoutLostAckBD)
	oldSN := b.sn
	b.sn = l.serial.Next()
	l.obs.Reissue("l1", l.id, addr, b.tid, msg.AckO, oldSN, b.sn)
	b.piggy = false // resends are standalone AckO messages
	l.run.Proto.AcksOSent++
	l.send(&msg.Message{Type: msg.AckO, Dst: b.ackOTo, Addr: addr, SN: b.sn, TID: b.tid})
	l.armLostAckBD(addr, b)
}

// install puts a line in the array, evicting a victim if necessary, and
// returns it; it returns nil when every way in the set is pinned (the caller
// must retry). Lines in blocked ownership cannot be evicted (that would
// transfer ownership), nor can lines with in-flight transactions.
func (l *L1) install(addr msg.Addr, state int, payload msg.Payload, dirty bool, tid msg.TID) *cache.Line {
	if line := l.array.Lookup(addr); line != nil {
		if line.State != state {
			l.obs.StateChange("l1", l.id, addr, tid, stateName(line.State), stateName(state))
		}
		line.State = state
		line.Payload = payload
		line.Dirty = dirty
		l.array.Touch(line)
		return line
	}
	victim := l.array.Victim(addr, l.victimFilter)
	if victim == nil {
		return nil
	}
	if victim.Valid {
		l.evict(victim, tid)
	}
	victim.Reset(addr)
	victim.State = state
	victim.Payload = payload
	victim.Dirty = dirty
	l.array.Touch(victim)
	l.obs.StateChange("l1", l.id, addr, tid, "I", stateName(state))
	return victim
}

// evict starts a three-phase writeback for owned lines (with the Put
// guarded by the lost-request timeout); shared lines drop silently. cause is
// the transaction whose placement forced the eviction: the silent drop is
// attributed to it, while an owned eviction starts a new writeback
// transaction with its own TID.
func (l *L1) evict(line *cache.Line, cause msg.TID) {
	if !ownerState(line.State) {
		line.Valid = false
		l.obs.StateChange("l1", l.id, line.Addr, cause, stateName(line.State), "I")
		return
	}
	addr := line.Addr
	w := l.wb.Alloc(addr)
	if w == nil {
		protocolPanic("L1 %d duplicate writeback for %#x", l.id, addr)
	}
	w.owner = l
	w.addr = addr
	w.payload = line.Payload
	w.dirty = line.Dirty || line.State == StateM
	w.tid = l.tids.Next()
	w.sn = l.serial.Next()
	w.putTimer.Bind(l.engine)
	l.obs.StateChange("l1", l.id, addr, w.tid, stateName(line.State), "WB")
	l.run.Proto.Writebacks++
	l.send(&msg.Message{Type: msg.Put, Dst: l.homeL2(addr), Addr: addr, SN: w.sn, TID: w.tid})
	l.armPutTimer(addr, w)
	line.Valid = false
}

// armPutTimer reissues a Put whose WbAck never arrived.
func (l *L1) armPutTimer(addr msg.Addr, w *l1WB) {
	w.putTimer.StartCall(sim.Backoff(l.params.LostRequestTimeout, w.attempts), putTimerFired, w)
}

func putTimerFired(arg any) {
	w := arg.(*l1WB)
	l, addr := w.owner, w.addr
	if l.wb.Get(addr) != w || w.sentData {
		return
	}
	if l.domains.MaybeDeclareDead(l.homeL2(addr)) {
		l.armPutTimer(addr, w)
		return
	}
	l.run.Proto.LostRequestTimeouts++
	l.run.Proto.RequestsReissued++
	l.obs.TimeoutFired("l1", l.id, addr, w.tid, obs.TimeoutLostRequest)
	w.attempts++
	oldSN := w.sn
	w.sn = l.serial.Next()
	l.obs.Reissue("l1", l.id, addr, w.tid, msg.Put, oldSN, w.sn)
	l.send(&msg.Message{Type: msg.Put, Dst: l.homeL2(addr), Addr: addr, SN: w.sn, TID: w.tid})
	l.armPutTimer(addr, w)
}

// freeWB releases a writeback entry and wakes deferred operations.
func (l *L1) freeWB(addr msg.Addr, w *l1WB) {
	w.putTimer.Stop()
	w.backupTimer.Stop()
	waiters := w.waiters
	tid := w.tid // Free recycles the entry; read before, use after
	l.wb.Free(addr)
	l.obs.TransactionEnd("l1", l.id, addr, tid)
	l.wake(waiters)
}

// stale counts a discarded message; withMSHR marks it as a detected false
// positive (the original response arrived after a reissue).
func (l *L1) stale(withMSHR bool) {
	l.run.Proto.StaleSNDiscarded++
	if withMSHR {
		l.run.Proto.FalsePositives++
	}
}

func (l *L1) wake(waiters []func()) {
	for _, w := range waiters {
		l.engine.Schedule(0, w)
	}
}

func (l *L1) send(m *msg.Message) {
	pm := msg.NewMessage()
	*pm = *m
	pm.Src = l.id
	l.net.Send(pm)
}

// InspectLines implements proto.Inspectable.
func (l *L1) InspectLines(fn func(proto.LineView)) {
	l.array.ForEach(func(c *cache.Line) {
		state := stateName(c.State)
		var sn msg.SerialNumber
		if e := l.mshr.Get(c.Addr); e != nil {
			state = stateNameMiss(c.State)
			sn = e.sn
		} else if b := l.blocked.Get(c.Addr); b != nil {
			state = stateNameBlocked(c.State)
			sn = b.sn
		}
		fn(proto.LineView{
			Addr:      c.Addr,
			Perm:      permOf(c.State),
			Owner:     ownerState(c.State),
			Transient: l.mshr.Get(c.Addr) != nil || l.blocked.Get(c.Addr) != nil,
			Payload:   c.Payload,
			State:     state,
			SN:        sn,
		})
	})
	// Misses and blocked requests on lines not (yet) resident in the array
	// are still in-flight transactions; report them so deadlock dumps and
	// coverage tooling see every pending request.
	l.mshr.ForEach(func(addr msg.Addr, e *l1Miss) {
		if l.array.Lookup(addr) == nil {
			fn(proto.LineView{Addr: addr, Transient: true, State: "I+miss", SN: e.sn})
		}
	})
	l.blocked.ForEach(func(addr msg.Addr, b *blockedEntry) {
		if l.array.Lookup(addr) == nil && l.mshr.Get(addr) == nil {
			fn(proto.LineView{Addr: addr, Transient: true, State: "I+blocked", SN: b.sn})
		}
	})
	l.backups.ForEach(func(addr msg.Addr, b *backupEntry) {
		fn(proto.LineView{Addr: addr, Backup: true, Transient: true, Payload: b.payload,
			State: "backup", SN: b.sn})
	})
	l.wb.ForEach(func(addr msg.Addr, w *l1WB) {
		if w.transferred {
			return
		}
		fn(proto.LineView{
			Addr:      addr,
			Owner:     !w.sentData,
			Backup:    w.sentData,
			Transient: true,
			Payload:   w.payload,
			State:     "WB",
			SN:        w.sn,
		})
	})
}
