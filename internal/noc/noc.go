// Package noc models the on-chip interconnection network: a 2D mesh with
// dimension-ordered (XY) routing, virtual channels, per-link flit
// serialization and contention.
//
// Two properties matter to the coherence protocol and are guaranteed here:
//
//   - Point-to-point ordering: two messages sent from node A to node B in
//     the same virtual-channel class are delivered in send order, because
//     XY routing is deterministic (same path) and every link is a FIFO
//     queue per virtual channel. The paper's Figure 2 argument relies on
//     this property.
//   - Unreliability under fault injection: a message may be dropped (lost
//     in the network or discarded on arrival after a CRC failure); the
//     network never duplicates, corrupts-silently or misdelivers.
package noc

import (
	"fmt"

	"repro/internal/msg"
	"repro/internal/sim"
)

// Routing selects the routing algorithm.
type Routing int

const (
	// RoutingXY is deterministic dimension-ordered routing (X first): the
	// default. Together with per-VC FIFO links it yields point-to-point
	// ordered delivery, the assumption of the paper's base architecture.
	RoutingXY Routing = iota
	// RoutingYX routes Y first; also deterministic and ordered.
	RoutingYX
	// RoutingAdaptive picks XY or YX per message (deterministically from
	// the message sequence), so two messages between the same endpoints
	// may take different paths and arrive out of order. This models the
	// unordered-network extension the paper points to (§2): FtDirCMP's
	// serial numbers make it tolerate reordering as well as loss.
	RoutingAdaptive
)

func (r Routing) String() string {
	switch r {
	case RoutingXY:
		return "xy"
	case RoutingYX:
		return "yx"
	case RoutingAdaptive:
		return "adaptive"
	default:
		return fmt.Sprintf("Routing(%d)", int(r))
	}
}

// Config describes the mesh.
type Config struct {
	// Width and Height are the mesh dimensions (Width*Height routers).
	Width, Height int
	// HopLatency is the router pipeline plus link traversal delay per hop,
	// in cycles.
	HopLatency uint64
	// LocalLatency is the injection/ejection (network interface) delay in
	// cycles, paid once at each end.
	LocalLatency uint64
	// FlitBytes is the channel bandwidth in bytes per cycle; a message of
	// size S occupies each link for ceil(S/FlitBytes) cycles.
	FlitBytes int
	// ControlSize and DataSize are the message sizes in bytes (Table 4:
	// 8 and 72 by default).
	ControlSize, DataSize int
	// Routing selects the routing algorithm (default RoutingXY).
	Routing Routing
	// RoutingSeed drives the adaptive path choice.
	RoutingSeed uint64
	// DetailedRouters switches to the virtual cut-through router model
	// with finite per-link per-VC input buffers and credit backpressure
	// (see detailed.go). Requires deterministic routing.
	DetailedRouters bool
	// BufferFlits is the input buffer capacity per link per virtual
	// channel in detailed mode; it must hold at least one data message.
	BufferFlits int
	// ChoiceDelivery schedules every final message ejection as a sim
	// choice event keyed by its (src, dst, class) channel, so that with a
	// sim.Chooser installed the delivery order becomes a model-checking
	// decision and any delivery may be turned into a loss (see
	// internal/mc). Per-channel FIFO order — the ordering guarantee above
	// — is preserved: only channel-head events are offered as choices.
	// Without a chooser the network behaves exactly as with the flag off.
	// Requires the simple link model and deterministic routing.
	ChoiceDelivery bool
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Width < 1 || c.Height < 1 {
		return fmt.Errorf("noc: invalid mesh %dx%d", c.Width, c.Height)
	}
	if c.FlitBytes < 1 {
		return fmt.Errorf("noc: flit bytes must be positive, got %d", c.FlitBytes)
	}
	if c.ControlSize < 1 || c.DataSize < c.ControlSize {
		return fmt.Errorf("noc: invalid message sizes control=%d data=%d", c.ControlSize, c.DataSize)
	}
	if c.ChoiceDelivery {
		if c.DetailedRouters {
			return fmt.Errorf("noc: choice delivery requires the simple link model (DetailedRouters off)")
		}
		if c.Routing == RoutingAdaptive {
			return fmt.Errorf("noc: choice delivery requires deterministic routing (got %v)", c.Routing)
		}
	}
	return c.validateDetailed()
}

// Handler consumes a delivered message.
type Handler func(*msg.Message)

// DropFunc decides, at injection time, whether a message will be lost. The
// fault injector provides it; nil means a perfectly reliable network.
type DropFunc func(*msg.Message) bool

// Recorder observes network activity. Implementations must be cheap;
// every message passes through these hooks. The system fans the hooks out
// to the statistics collector, the debug message trace (package trace)
// and the structured event recorder (package obs), each of which
// implements this interface.
type Recorder interface {
	// MessageSent is called once per injected message with its wire size.
	MessageSent(m *msg.Message, bytes int)
	// MessageDropped is called when a message is lost to a fault.
	MessageDropped(m *msg.Message)
	// MessageDelivered is called on delivery with the end-to-end latency.
	MessageDelivered(m *msg.Message, latency uint64)
}

// nopRecorder is used when the caller passes a nil Recorder.
type nopRecorder struct{}

func (nopRecorder) MessageSent(*msg.Message, int)         {}
func (nopRecorder) MessageDropped(*msg.Message)           {}
func (nopRecorder) MessageDelivered(*msg.Message, uint64) {}

// direction indexes a router's output links.
type direction int

const (
	dirEast direction = iota
	dirWest
	dirNorth
	dirSouth
	dirLocal
	numDirections
)

// link tracks when each virtual-channel class of a directed link is next
// free. Contention is modeled by delaying departure until the link frees.
type link struct {
	freeAt [6]uint64 // indexed by msg.Class - 1
}

type node struct {
	router  int
	handler Handler
}

// Network is the mesh interconnect. Create with New, register endpoints
// with Attach, then Send messages.
//
// The network owns every message passed to Send: after the destination
// handler returns (or the drop has been recorded), the message is recycled
// into the msg pool. Handlers must copy out anything they need past their
// own return (see docs/PERFORMANCE.md for the ownership rules).
type Network struct {
	engine *sim.Engine
	cfg    Config
	drop   DropFunc
	rec    Recorder

	// links[router][dir] is the output link of router in direction dir.
	links [][numDirections]link
	nodes map[msg.NodeID]node
	rng   *sim.RNG
	bufs  map[detailedBufKey]*vcBuf

	// transits and flights are freelists of per-message traversal state;
	// the simulation is single-goroutine per engine, so a plain slice
	// suffices. In steady state every hop is allocation-free.
	transits []*transit
	flights  []*flight

	// Dead-link state (see deadlink.go). deadOut[router][dir] marks a dead
	// output link; nextHop is the BFS detour table consulted by route()
	// only while anyDead is set, so the fault-free path is untouched.
	deadOut [][numDirections]bool
	anyDead bool
	nextHop []int8
}

// transit is the traversal state of one in-flight message in the simple
// link model, recycled through the Network's freelist between messages.
type transit struct {
	net       *Network
	m         *msg.Message
	router    int
	dstRouter int
	vc        int
	serLat    uint64
	sentAt    uint64
	dropped   bool
	yFirst    bool
}

func (n *Network) getTransit() *transit {
	if len(n.transits) == 0 {
		return &transit{net: n}
	}
	t := n.transits[len(n.transits)-1]
	n.transits = n.transits[:len(n.transits)-1]
	return t
}

func (n *Network) putTransit(t *transit) {
	t.m = nil
	n.transits = append(n.transits, t)
}

// New builds the network. rec may be nil.
func New(engine *sim.Engine, cfg Config, drop DropFunc, rec Recorder) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if rec == nil {
		rec = nopRecorder{}
	}
	return &Network{
		engine: engine,
		cfg:    cfg,
		drop:   drop,
		rec:    rec,
		links:  make([][numDirections]link, cfg.Width*cfg.Height),
		nodes:  make(map[msg.NodeID]node),
		rng:    sim.NewRNG(cfg.RoutingSeed ^ 0x5eed),
		bufs:   make(map[detailedBufKey]*vcBuf),
	}, nil
}

// Attach registers a protocol agent at the given router (0..W*H-1).
// Multiple agents may share a router (an L1 and an L2 bank on one tile).
func (n *Network) Attach(id msg.NodeID, router int, h Handler) error {
	if router < 0 || router >= len(n.links) {
		return fmt.Errorf("noc: router %d out of range", router)
	}
	if _, dup := n.nodes[id]; dup {
		return fmt.Errorf("noc: node %d already attached", id)
	}
	if h == nil {
		return fmt.Errorf("noc: nil handler for node %d", id)
	}
	n.nodes[id] = node{router: router, handler: h}
	return nil
}

// RouterOf returns the router a node is attached to.
func (n *Network) RouterOf(id msg.NodeID) (int, bool) {
	nd, ok := n.nodes[id]
	return nd.router, ok
}

// Hops returns the XY hop count between two nodes' routers.
func (n *Network) Hops(a, b msg.NodeID) int {
	ra, ok := n.nodes[a]
	if !ok {
		return 0
	}
	rb, ok := n.nodes[b]
	if !ok {
		return 0
	}
	ax, ay := ra.router%n.cfg.Width, ra.router/n.cfg.Width
	bx, by := rb.router%n.cfg.Width, rb.router/n.cfg.Width
	return abs(ax-bx) + abs(ay-by)
}

// Send injects a message. Src, Dst and Type must be set. Delivery (or the
// drop) happens via scheduled events; Send itself never invokes handlers.
func (n *Network) Send(m *msg.Message) {
	src, ok := n.nodes[m.Src]
	if !ok {
		panic(fmt.Sprintf("noc: send from unattached node %d", m.Src))
	}
	dst, ok := n.nodes[m.Dst]
	if !ok {
		panic(fmt.Sprintf("noc: send to unattached node %d", m.Dst))
	}

	size := m.SizeBytes(n.cfg.ControlSize, n.cfg.DataSize)
	n.rec.MessageSent(m, size)
	dropped := n.drop != nil && n.drop(m)

	if n.anyDead && !n.reachable(src.router, dst.router) {
		// A dead link partitioned source from destination: the message is
		// lost on the spot. The protocols see a permanently lossy path.
		n.rec.MessageDropped(m)
		msg.Recycle(m)
		return
	}

	serLat := uint64((size + n.cfg.FlitBytes - 1) / n.cfg.FlitBytes)
	if serLat == 0 {
		serLat = 1
	}
	if n.cfg.DetailedRouters {
		n.detailedSend(m, src.router, dst.router, int(serLat), dropped)
		return
	}

	yFirst := n.cfg.Routing == RoutingYX
	if n.cfg.Routing == RoutingAdaptive {
		yFirst = n.rng.Bool(0.5)
	}

	t := n.getTransit()
	t.m = m
	t.router = src.router
	t.dstRouter = dst.router
	t.vc = int(m.Class()) - 1
	t.serLat = serLat
	t.sentAt = n.engine.Now()
	t.dropped = dropped
	t.yFirst = yFirst

	// Injection through the local port of the source router.
	n.traverse(t)
}

// transitHop resumes a transit at its next router; transitDeliver ejects it
// at the destination. Both are scheduled through ScheduleCall with the
// pooled transit as the argument, so advancing a message allocates nothing.
func transitHop(arg any, _ uint64) {
	t := arg.(*transit)
	t.net.traverse(t)
}

func transitDeliver(arg any, _ uint64) {
	t := arg.(*transit)
	n, m, dropped, sentAt := t.net, t.m, t.dropped, t.sentAt
	n.putTransit(t)
	if dropped {
		n.rec.MessageDropped(m)
		msg.Recycle(m)
		return
	}
	nd := n.nodes[m.Dst]
	n.rec.MessageDelivered(m, n.engine.Now()-sentAt)
	nd.handler(m)
	msg.Recycle(m)
}

// transitDropChoice loses a message at its ejection port: the model checker
// chose to consume this delivery as one of its budgeted faults. Accounting
// matches an injector drop — MessageDropped fires and the message and
// transit return to their pools.
func transitDropChoice(arg any, _ uint64) {
	t := arg.(*transit)
	n, m := t.net, t.m
	n.putTransit(t)
	n.rec.MessageDropped(m)
	msg.Recycle(m)
}

// channelKey packs a message's point-to-point ordered channel identity —
// (src, dst, virtual-channel class) — for the engine's per-channel
// choice-head filtering.
func channelKey(m *msg.Message) uint64 {
	return uint64(uint16(m.Src))<<32 | uint64(uint16(m.Dst))<<16 | uint64(m.Class())
}

// traverse advances the message one link at a time from its current router
// (where the head flit arrives at the current cycle); the message departs
// on the next link when both the router pipeline delay has elapsed and the
// link is free.
func (n *Network) traverse(t *transit) {
	dir := n.route(t.router, t.dstRouter, t.yFirst)
	if n.anyDead && dir == dirLocal && t.router != t.dstRouter {
		// A link died mid-flight and cut this message off from its
		// destination: it is lost where it stands.
		t.dropped = true
	}
	lnk := &n.links[t.router][dir]
	depart := n.engine.Now()
	if lnk.freeAt[t.vc] > depart {
		depart = lnk.freeAt[t.vc]
	}
	lnk.freeAt[t.vc] = depart + t.serLat

	if dir == dirLocal {
		// Ejection at the destination router.
		at := depart + t.serLat + n.cfg.LocalLatency
		if n.cfg.ChoiceDelivery && !t.dropped {
			// Injector-dropped messages are already lost; only real
			// deliveries become model-checking choices.
			n.engine.ScheduleChoiceAt(at, transitDeliver, transitDropChoice, t, 0, channelKey(t.m), msg.Fingerprint(t.m))
			return
		}
		n.engine.ScheduleCallAt(at, transitDeliver, t, 0)
		return
	}

	t.router = n.neighbor(t.router, dir)
	n.engine.ScheduleCallAt(depart+n.cfg.HopLatency, transitHop, t, 0)
}

// route returns the next output direction at router toward dstRouter,
// resolving the X dimension first (XY) or the Y dimension first (YX).
// While any link is dead it instead follows the BFS detour table.
func (n *Network) route(router, dstRouter int, yFirst bool) direction {
	if n.anyDead {
		return n.detourDir(router, dstRouter)
	}
	w := n.cfg.Width
	x, y := router%w, router/w
	dx, dy := dstRouter%w, dstRouter/w
	if yFirst {
		switch {
		case y < dy:
			return dirSouth
		case y > dy:
			return dirNorth
		}
	}
	switch {
	case x < dx:
		return dirEast
	case x > dx:
		return dirWest
	case y < dy:
		return dirSouth
	case y > dy:
		return dirNorth
	default:
		return dirLocal
	}
}

// neighbor returns the router one hop away in direction dir.
func (n *Network) neighbor(router int, dir direction) int {
	w := n.cfg.Width
	switch dir {
	case dirEast:
		return router + 1
	case dirWest:
		return router - 1
	case dirSouth:
		return router + w
	case dirNorth:
		return router - w
	default:
		return router
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
