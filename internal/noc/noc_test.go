package noc

import (
	"testing"
	"testing/quick"

	"repro/internal/msg"
	"repro/internal/sim"
)

func testConfig() Config {
	return Config{
		Width: 4, Height: 4,
		HopLatency: 4, LocalLatency: 1,
		FlitBytes: 16, ControlSize: 8, DataSize: 72,
	}
}

type capture struct {
	sent, dropped, delivered []msg.Message
	latencies                []uint64
}

func (c *capture) MessageSent(m *msg.Message, bytes int) { c.sent = append(c.sent, *m) }
func (c *capture) MessageDropped(m *msg.Message)         { c.dropped = append(c.dropped, *m) }
func (c *capture) MessageDelivered(m *msg.Message, l uint64) {
	c.delivered = append(c.delivered, *m)
	c.latencies = append(c.latencies, l)
}

func buildNet(t *testing.T, cfg Config, drop DropFunc, rec Recorder) (*sim.Engine, *Network, map[msg.NodeID][]msg.Message) {
	t.Helper()
	e := sim.NewEngine()
	n, err := New(e, cfg, drop, rec)
	if err != nil {
		t.Fatal(err)
	}
	inbox := make(map[msg.NodeID][]msg.Message)
	for r := 0; r < cfg.Width*cfg.Height; r++ {
		id := msg.NodeID(r + 1)
		router := r
		if err := n.Attach(id, router, func(m *msg.Message) {
			inbox[m.Dst] = append(inbox[m.Dst], *m)
		}); err != nil {
			t.Fatal(err)
		}
	}
	return e, n, inbox
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Width: 0, Height: 1, FlitBytes: 8, ControlSize: 8, DataSize: 72},
		{Width: 2, Height: 2, FlitBytes: 0, ControlSize: 8, DataSize: 72},
		{Width: 2, Height: 2, FlitBytes: 8, ControlSize: 0, DataSize: 72},
		{Width: 2, Height: 2, FlitBytes: 8, ControlSize: 80, DataSize: 72},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d validated unexpectedly", i)
		}
	}
	if err := testConfig().Validate(); err != nil {
		t.Errorf("good config rejected: %v", err)
	}
}

func TestAttachErrors(t *testing.T) {
	e := sim.NewEngine()
	n, err := New(e, testConfig(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	h := func(*msg.Message) {}
	if err := n.Attach(1, 0, h); err != nil {
		t.Fatal(err)
	}
	if err := n.Attach(1, 1, h); err == nil {
		t.Error("duplicate attach accepted")
	}
	if err := n.Attach(2, 99, h); err == nil {
		t.Error("out-of-range router accepted")
	}
	if err := n.Attach(3, 0, nil); err == nil {
		t.Error("nil handler accepted")
	}
}

func TestDeliveryAndLatency(t *testing.T) {
	rec := &capture{}
	e, n, inbox := buildNet(t, testConfig(), nil, rec)
	// Node 1 (router 0) to node 16 (router 15): 3+3 = 6 hops.
	n.Send(&msg.Message{Type: msg.GetS, Src: 1, Dst: 16, Addr: 0x40})
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(inbox[16]) != 1 {
		t.Fatalf("delivered %d messages", len(inbox[16]))
	}
	if hops := n.Hops(1, 16); hops != 6 {
		t.Fatalf("hops = %d, want 6", hops)
	}
	// Serialization of an 8-byte control message over 16-byte links is 1
	// cycle per link; 6 hops * (hop latency + ...) — check it is at least
	// hops*HopLatency and bounded by a sane figure.
	lat := rec.latencies[0]
	if lat < 6*4 || lat > 6*4+8+2 {
		t.Fatalf("latency = %d, outside expected range", lat)
	}
}

func TestDataMessagesSlowerThanControl(t *testing.T) {
	recC := &capture{}
	e, n, _ := buildNet(t, testConfig(), nil, recC)
	n.Send(&msg.Message{Type: msg.GetS, Src: 1, Dst: 16, Addr: 0x40})
	n.Send(&msg.Message{Type: msg.Data, Src: 1, Dst: 16, Addr: 0x80})
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(recC.latencies) != 2 {
		t.Fatal("missing deliveries")
	}
	// The 72-byte data message occupies each link for 5 cycles instead of
	// 1, so it must take longer end to end.
	if recC.latencies[1] <= recC.latencies[0] {
		t.Fatalf("data latency %d not above control latency %d",
			recC.latencies[1], recC.latencies[0])
	}
}

func TestSameClassFIFOOrdering(t *testing.T) {
	e, n, inbox := buildNet(t, testConfig(), nil, nil)
	for i := 0; i < 20; i++ {
		n.Send(&msg.Message{Type: msg.GetS, Src: 1, Dst: 16, Addr: msg.Addr(i)})
	}
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	got := inbox[16]
	if len(got) != 20 {
		t.Fatalf("delivered %d/20", len(got))
	}
	for i, m := range got {
		if m.Addr != msg.Addr(i) {
			t.Fatalf("message %d out of order: addr=%#x", i, m.Addr)
		}
	}
}

// TestFIFOOrderingProperty: any interleaving of messages between random
// pairs is delivered in per-(src,dst,class) FIFO order — the property the
// coherence protocol's Figure 2 argument relies on.
func TestFIFOOrderingProperty(t *testing.T) {
	prop := func(seed uint64, count uint8) bool {
		rng := sim.NewRNG(seed)
		e, n, inbox := buildNet(t, testConfig(), nil, nil)
		types := []msg.Type{msg.GetS, msg.Inv, msg.Data, msg.Unblock, msg.AckO, msg.WbPing}
		nmsgs := int(count%64) + 2
		seq := uint64(0)
		for i := 0; i < nmsgs; i++ {
			src := msg.NodeID(rng.Intn(16) + 1)
			dst := msg.NodeID(rng.Intn(16) + 1)
			if src == dst {
				continue
			}
			seq++
			n.Send(&msg.Message{
				Type: types[rng.Intn(len(types))],
				Src:  src, Dst: dst,
				Addr: msg.Addr(seq), // encodes global send order
				SN:   msg.SerialNumber(seq),
			})
		}
		if err := e.Run(0); err != nil {
			return false
		}
		// Per (src, class) stream at each destination, addresses must be
		// increasing.
		last := make(map[[2]int]uint64)
		for dst, msgs := range inbox {
			for _, m := range msgs {
				key := [2]int{int(m.Src)*1000 + int(dst), int(m.Class())}
				if uint64(m.Addr) < last[key] {
					return false
				}
				last[key] = uint64(m.Addr)
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestContentionDelaysSecondMessage(t *testing.T) {
	rec := &capture{}
	e, n, _ := buildNet(t, testConfig(), nil, rec)
	// Two large data messages over the same path and class contend for the
	// same links: the second must arrive later than the first.
	n.Send(&msg.Message{Type: msg.Data, Src: 1, Dst: 4, Addr: 0x40})
	n.Send(&msg.Message{Type: msg.Data, Src: 1, Dst: 4, Addr: 0x80})
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(rec.latencies) != 2 {
		t.Fatal("missing deliveries")
	}
	if rec.latencies[1] <= rec.latencies[0] {
		t.Fatalf("no contention: %v", rec.latencies)
	}
}

func TestDifferentClassesDoNotBlockEachOther(t *testing.T) {
	rec := &capture{}
	e, n, _ := buildNet(t, testConfig(), nil, rec)
	// Saturate the request class, then send one response-class message:
	// it must not pay the request-class queueing delay.
	for i := 0; i < 10; i++ {
		n.Send(&msg.Message{Type: msg.GetS, Src: 1, Dst: 4, Addr: msg.Addr(i)})
	}
	n.Send(&msg.Message{Type: msg.Data, Src: 1, Dst: 4, Addr: 0x999})
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	var dataLat, lastReqLat uint64
	for i, m := range rec.delivered {
		if m.Type == msg.Data {
			dataLat = rec.latencies[i]
		} else {
			lastReqLat = rec.latencies[i]
		}
	}
	if dataLat >= lastReqLat {
		t.Fatalf("response (lat %d) queued behind requests (lat %d)", dataLat, lastReqLat)
	}
}

func TestDropConsumesButDoesNotDeliver(t *testing.T) {
	rec := &capture{}
	dropAll := func(*msg.Message) bool { return true }
	e, n, inbox := buildNet(t, testConfig(), dropAll, rec)
	n.Send(&msg.Message{Type: msg.GetS, Src: 1, Dst: 16, Addr: 0x40})
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(inbox[16]) != 0 {
		t.Fatal("dropped message was delivered")
	}
	if len(rec.dropped) != 1 || len(rec.sent) != 1 || len(rec.delivered) != 0 {
		t.Fatalf("recorder saw sent=%d dropped=%d delivered=%d",
			len(rec.sent), len(rec.dropped), len(rec.delivered))
	}
}

func TestSendToUnattachedPanics(t *testing.T) {
	e := sim.NewEngine()
	n, err := New(e, testConfig(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Attach(1, 0, func(*msg.Message) {}); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	n.Send(&msg.Message{Type: msg.GetS, Src: 1, Dst: 99})
}

func TestSameRouterDelivery(t *testing.T) {
	e := sim.NewEngine()
	n, err := New(e, testConfig(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	var got []msg.Message
	if err := n.Attach(1, 5, func(*msg.Message) {}); err != nil {
		t.Fatal(err)
	}
	if err := n.Attach(2, 5, func(m *msg.Message) { got = append(got, *m) }); err != nil {
		t.Fatal(err)
	}
	n.Send(&msg.Message{Type: msg.GetS, Src: 1, Dst: 2, Addr: 0x40})
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatal("same-tile message not delivered")
	}
	if n.Hops(1, 2) != 0 {
		t.Fatalf("hops = %d, want 0", n.Hops(1, 2))
	}
}

func BenchmarkNetworkSend(b *testing.B) {
	e := sim.NewEngine()
	n, err := New(e, testConfig(), nil, nil)
	if err != nil {
		b.Fatal(err)
	}
	for r := 0; r < 16; r++ {
		if err := n.Attach(msg.NodeID(r+1), r, func(*msg.Message) {}); err != nil {
			b.Fatal(err)
		}
	}
	rng := sim.NewRNG(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Send(&msg.Message{
			Type: msg.GetS,
			Src:  msg.NodeID(rng.Intn(16) + 1),
			Dst:  msg.NodeID(rng.Intn(16) + 1),
			Addr: msg.Addr(i),
		})
		if e.Pending() > 4096 {
			if err := e.Run(0); err != nil {
				b.Fatal(err)
			}
		}
	}
	if err := e.Run(0); err != nil {
		b.Fatal(err)
	}
}

func TestRoutingYXDiffersFromXY(t *testing.T) {
	// A message from corner to corner takes different intermediate links
	// under XY vs YX; both must deliver with identical latency on an
	// uncontended mesh.
	latency := func(r Routing) uint64 {
		cfg := testConfig()
		cfg.Routing = r
		rec := &capture{}
		e, n, _ := buildNet(t, cfg, nil, rec)
		n.Send(&msg.Message{Type: msg.GetS, Src: 1, Dst: 16, Addr: 0x40})
		if err := e.Run(0); err != nil {
			t.Fatal(err)
		}
		return rec.latencies[0]
	}
	if latency(RoutingXY) != latency(RoutingYX) {
		t.Fatal("XY and YX latencies differ on an empty mesh")
	}
}

func TestAdaptiveRoutingDelivers(t *testing.T) {
	cfg := testConfig()
	cfg.Routing = RoutingAdaptive
	cfg.RoutingSeed = 7
	e, n, inbox := buildNet(t, cfg, nil, nil)
	for i := 0; i < 200; i++ {
		n.Send(&msg.Message{Type: msg.GetS, Src: 1, Dst: 16, Addr: msg.Addr(i)})
	}
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(inbox[16]) != 200 {
		t.Fatalf("delivered %d/200", len(inbox[16]))
	}
}

func TestRoutingStrings(t *testing.T) {
	for _, r := range []Routing{RoutingXY, RoutingYX, RoutingAdaptive} {
		if r.String() == "" || r.String()[0] == 'R' {
			t.Errorf("Routing(%d) renders %q", int(r), r.String())
		}
	}
}

func TestRouterOf(t *testing.T) {
	e := sim.NewEngine()
	n, err := New(e, testConfig(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Attach(5, 9, func(*msg.Message) {}); err != nil {
		t.Fatal(err)
	}
	if r, ok := n.RouterOf(5); !ok || r != 9 {
		t.Fatalf("RouterOf = %d,%t", r, ok)
	}
	if _, ok := n.RouterOf(99); ok {
		t.Fatal("unattached node resolved")
	}
}
