package noc

// Link-death support: KillLink removes one bidirectional mesh link from
// service. While any link is dead, next-hop decisions come from an
// all-pairs table recomputed by BFS over the surviving links (deterministic
// tie-break: directions are tried in a fixed order), so messages detour —
// possibly non-minimally — around the cut. Both backends share route(), so
// the simple link model and the detailed router model reroute identically.
// Messages already committed to a hop across the link at kill time still
// arrive (they left before the cut); the message that triggered the death
// is dropped by the injector, modeling the one lost on the wire.
//
// Rerouting breaks the same-path FIFO guarantee for messages that straddle
// the kill instant; FtDirCMP's serial numbers tolerate that reordering
// (the same property that covers adaptive routing). If source and
// destination end up partitioned, Send records the message as dropped
// instead of injecting it — the protocols then see a permanently lossy
// path and their timeout machinery (or a tile-death declaration) takes
// over. In detailed mode a flight parked on a buffer feeding the dead link
// is re-routed the next time that buffer frees capacity.

// KillLink permanently removes the link between routers a and b, in both
// directions, and recomputes the detour routing table. Killing a link that
// does not exist (non-adjacent routers) panics; killing the same link twice
// is a no-op.
func (n *Network) KillLink(a, b int) {
	dirAB, ok := n.dirBetween(a, b)
	if !ok {
		panic("noc: KillLink on non-adjacent routers")
	}
	dirBA, _ := n.dirBetween(b, a)
	if n.deadOut == nil {
		n.deadOut = make([][numDirections]bool, len(n.links))
	}
	n.deadOut[a][dirAB] = true
	n.deadOut[b][dirBA] = true
	n.anyDead = true
	n.rebuildNextHop()
}

// Adjacent reports whether routers a and b share a mesh link (and are both
// valid router indices) — the precondition for KillLink.
func (n *Network) Adjacent(a, b int) bool {
	if a < 0 || b < 0 || a >= len(n.links) || b >= len(n.links) {
		return false
	}
	_, ok := n.dirBetween(a, b)
	return ok
}

// dirBetween returns the output direction from router a to adjacent router
// b, or ok=false when they are not adjacent.
func (n *Network) dirBetween(a, b int) (direction, bool) {
	w := n.cfg.Width
	ax, ay := a%w, a/w
	bx, by := b%w, b/w
	switch {
	case ay == by && bx == ax+1:
		return dirEast, true
	case ay == by && bx == ax-1:
		return dirWest, true
	case ax == bx && by == ay+1:
		return dirSouth, true
	case ax == bx && by == ay-1:
		return dirNorth, true
	}
	return 0, false
}

// linkDead reports whether router's output link in direction dir is dead.
func (n *Network) linkDead(router int, dir direction) bool {
	return n.anyDead && n.deadOut[router][dir]
}

// rebuildNextHop recomputes the all-pairs next-hop table over surviving
// links: one BFS per destination, neighbors visited in fixed direction
// order for determinism. nextHop[r*R+d] is the direction to take at router
// r toward destination d, or -1 when d is unreachable from r.
func (n *Network) rebuildNextHop() {
	routers := len(n.links)
	if n.nextHop == nil {
		n.nextHop = make([]int8, routers*routers)
	}
	dist := make([]int, routers)
	queue := make([]int, 0, routers)
	dirs := [4]direction{dirEast, dirWest, dirNorth, dirSouth}
	for d := 0; d < routers; d++ {
		for r := 0; r < routers; r++ {
			dist[r] = -1
			n.nextHop[r*routers+d] = -1
		}
		dist[d] = 0
		queue = append(queue[:0], d)
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			// Discover every router v with a live link v->u: v's next hop
			// toward d goes through u.
			for _, dir := range dirs {
				v, ok := n.meshNeighbor(u, dir)
				if !ok || dist[v] >= 0 {
					continue
				}
				back := opposite(dir)
				if n.deadOut[v][back] {
					continue
				}
				dist[v] = dist[u] + 1
				n.nextHop[v*routers+d] = int8(back)
				queue = append(queue, v)
			}
		}
	}
}

// meshNeighbor returns the router adjacent to router in direction dir, with
// ok=false at the mesh edge.
func (n *Network) meshNeighbor(router int, dir direction) (int, bool) {
	w := n.cfg.Width
	x, y := router%w, router/w
	switch dir {
	case dirEast:
		if x+1 >= w {
			return 0, false
		}
		return router + 1, true
	case dirWest:
		if x == 0 {
			return 0, false
		}
		return router - 1, true
	case dirSouth:
		if y+1 >= len(n.links)/w {
			return 0, false
		}
		return router + w, true
	case dirNorth:
		if y == 0 {
			return 0, false
		}
		return router - w, true
	}
	return 0, false
}

func opposite(dir direction) direction {
	switch dir {
	case dirEast:
		return dirWest
	case dirWest:
		return dirEast
	case dirNorth:
		return dirSouth
	default:
		return dirNorth
	}
}

// reachable reports whether dstRouter can be reached from srcRouter over
// surviving links.
func (n *Network) reachable(srcRouter, dstRouter int) bool {
	if !n.anyDead || srcRouter == dstRouter {
		return true
	}
	return n.nextHop[srcRouter*len(n.links)+dstRouter] >= 0
}

// detourDir returns the table-driven next hop while links are dead.
func (n *Network) detourDir(router, dstRouter int) direction {
	if router == dstRouter {
		return dirLocal
	}
	d := n.nextHop[router*len(n.links)+dstRouter]
	if d < 0 {
		// Unreachable destinations are filtered at Send; a transit can only
		// get here if the link died mid-flight and cut it off. Eject locally
		// as a drop (handled by the caller noticing dstRouter mismatch is
		// impossible in the simple model, so treat as local ejection toward
		// the drop path).
		return dirLocal
	}
	return direction(d)
}
