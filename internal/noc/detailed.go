package noc

// Detailed network mode: a virtual cut-through router model with finite
// per-link per-virtual-channel input buffers and credit-based
// backpressure, replacing the simple infinite-queue link model. A message
// advances from router to router only when the downstream input buffer has
// room for all of its flits; messages that cannot advance wait in FIFO
// order and exert backpressure upstream. With deterministic dimension-
// ordered routing and per-class virtual channels the channel-dependency
// graph is acyclic, so the model is deadlock-free; adaptive routing is
// rejected in this mode (mixing XY and YX paths over shared finite buffers
// can deadlock, which is why O1TURN-style schemes dedicate VCs per
// sub-route).

import (
	"fmt"

	"repro/internal/msg"
)

// flight is a message traversing the detailed network, recycled through the
// Network's freelist once delivered (or dropped) — like the simple model's
// transit, advancing a flight allocates nothing in steady state.
type flight struct {
	net     *Network
	m       *msg.Message
	vc      int
	flits   int
	dst     int // destination router
	sentAt  uint64
	dropped bool

	router int    // current router
	buf    *vcBuf // input buffer currently holding the message (nil at injection)
	ready  uint64 // when the message is ready to leave the current router

	// nextRouter/nextBuf stage the state the flight assumes when its
	// scheduled arrival event fires (set by departTo).
	nextRouter int
	nextBuf    *vcBuf
}

func (n *Network) getFlight() *flight {
	if len(n.flights) == 0 {
		return &flight{net: n}
	}
	f := n.flights[len(n.flights)-1]
	n.flights = n.flights[:len(n.flights)-1]
	return f
}

func (n *Network) putFlight(f *flight) {
	f.m = nil
	f.buf = nil
	f.nextBuf = nil
	n.flights = append(n.flights, f)
}

// vcBuf is the flit buffer on the receiving side of one directed link for
// one virtual-channel class.
type vcBuf struct {
	net      *Network
	capacity int
	used     int
	waiters  []*flight
}

// vcBufFree is the scheduled tail-flit departure: it releases the flits the
// message occupied in its upstream buffer (carried in the event's tick).
func vcBufFree(arg any, flits uint64) {
	b := arg.(*vcBuf)
	b.net.bufFree(b, int(flits))
}

// free releases n flits and lets waiting upstream messages retry, in FIFO
// order.
func (n *Network) bufFree(b *vcBuf, flits int) {
	b.used -= flits
	if b.used < 0 {
		panic("noc: buffer underflow")
	}
	for len(b.waiters) > 0 {
		f := b.waiters[0]
		if b.capacity-b.used < f.flits {
			return
		}
		b.waiters = b.waiters[1:]
		if n.anyDead {
			// A link death may have re-routed this flight away from b;
			// recompute its path instead of departing into a stale buffer.
			n.tryAdvance(f)
			continue
		}
		b.used += f.flits
		n.departTo(f, b)
	}
}

// detailedBufKey identifies the input buffer fed by router's output link
// in direction dir, for one VC.
type detailedBufKey struct {
	router int
	dir    direction
	vc     int
}

// detailedSend injects a message into the router-pipeline model.
func (n *Network) detailedSend(m *msg.Message, srcRouter, dstRouter int, serFlits int, dropped bool) {
	f := n.getFlight()
	f.m = m
	f.vc = int(m.Class()) - 1
	f.flits = serFlits
	f.dst = dstRouter
	f.sentAt = n.engine.Now()
	f.dropped = dropped
	f.router = srcRouter
	f.ready = n.engine.Now()
	n.tryAdvance(f)
}

// tryAdvance moves the flight one hop if the downstream buffer has credit,
// otherwise parks it on the buffer's waiter list.
func (n *Network) tryAdvance(f *flight) {
	dir := n.route(f.router, f.dst, n.cfg.Routing == RoutingYX)
	if dir == dirLocal {
		if n.anyDead && f.router != f.dst {
			// Cut off from the destination by a link death: lost in place.
			f.dropped = true
		}
		n.eject(f)
		return
	}
	b := n.detailedBuf(detailedBufKey{router: f.router, dir: dir, vc: f.vc})
	if b.capacity-b.used < f.flits {
		b.waiters = append(b.waiters, f)
		return
	}
	b.used += f.flits
	n.departTo(f, b)
}

// flightArrive is the scheduled head-flit arrival at the next router: the
// flight assumes its staged position and tries to advance further.
func flightArrive(arg any, _ uint64) {
	f := arg.(*flight)
	f.router = f.nextRouter
	f.buf = f.nextBuf
	f.ready = f.net.engine.Now()
	f.net.tryAdvance(f)
}

// departTo sends the flight over the link into downstream buffer b: it
// serializes on the output link, frees the current buffer when the tail
// flit has left, and arrives downstream after the hop latency.
func (n *Network) departTo(f *flight, b *vcBuf) {
	dir := n.route(f.router, f.dst, n.cfg.Routing == RoutingYX)
	lnk := &n.links[f.router][dir]
	depart := f.ready
	if lnk.freeAt[f.vc] > depart {
		depart = lnk.freeAt[f.vc]
	}
	if depart < n.engine.Now() {
		depart = n.engine.Now()
	}
	serLat := uint64(f.flits)
	lnk.freeAt[f.vc] = depart + serLat

	// The tail flit leaves the current buffer at depart+serLat.
	if cur := f.buf; cur != nil {
		n.engine.ScheduleCallAt(depart+serLat, vcBufFree, cur, uint64(f.flits))
	}

	f.nextRouter = n.neighbor(f.router, dir)
	f.nextBuf = b
	n.engine.ScheduleCallAt(depart+n.cfg.HopLatency, flightArrive, f, 0)
}

// flightDeliver is the scheduled ejection: it hands the message to the
// destination handler (or records the drop), then recycles the flight and
// the message.
func flightDeliver(arg any, _ uint64) {
	f := arg.(*flight)
	n, m, dropped, sentAt := f.net, f.m, f.dropped, f.sentAt
	n.putFlight(f)
	if dropped {
		n.rec.MessageDropped(m)
		msg.Recycle(m)
		return
	}
	nd := n.nodes[m.Dst]
	n.rec.MessageDelivered(m, n.engine.Now()-sentAt)
	nd.handler(m)
	msg.Recycle(m)
}

// eject delivers (or drops) the flight at its destination router.
func (n *Network) eject(f *flight) {
	lnk := &n.links[f.router][dirLocal]
	depart := f.ready
	if lnk.freeAt[f.vc] > depart {
		depart = lnk.freeAt[f.vc]
	}
	serLat := uint64(f.flits)
	lnk.freeAt[f.vc] = depart + serLat
	if cur := f.buf; cur != nil {
		n.engine.ScheduleCallAt(depart+serLat, vcBufFree, cur, uint64(f.flits))
	}
	n.engine.ScheduleCallAt(depart+serLat+n.cfg.LocalLatency, flightDeliver, f, 0)
}

// detailedBuf returns (allocating on first use) the buffer for key.
func (n *Network) detailedBuf(key detailedBufKey) *vcBuf {
	b := n.bufs[key]
	if b == nil {
		b = &vcBuf{net: n, capacity: n.cfg.BufferFlits}
		n.bufs[key] = b
	}
	return b
}

// validateDetailed checks the detailed-mode configuration.
func (c Config) validateDetailed() error {
	if !c.DetailedRouters {
		return nil
	}
	if c.Routing == RoutingAdaptive {
		return fmt.Errorf("noc: adaptive routing is not deadlock-free with finite buffers; use XY or YX in detailed mode")
	}
	minFlits := (c.DataSize + c.FlitBytes - 1) / c.FlitBytes
	if c.BufferFlits < minFlits {
		return fmt.Errorf("noc: buffer of %d flits cannot hold a %d-byte message (%d flits)",
			c.BufferFlits, c.DataSize, minFlits)
	}
	return nil
}
