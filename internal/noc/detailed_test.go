package noc

import (
	"testing"

	"repro/internal/msg"
	"repro/internal/sim"
)

func detailedConfig() Config {
	cfg := testConfig()
	cfg.DetailedRouters = true
	cfg.BufferFlits = 16
	return cfg
}

func TestDetailedConfigValidation(t *testing.T) {
	cfg := detailedConfig()
	cfg.Routing = RoutingAdaptive
	if err := cfg.Validate(); err == nil {
		t.Error("adaptive routing accepted in detailed mode")
	}
	cfg = detailedConfig()
	cfg.BufferFlits = 2 // cannot hold a 72-byte (5-flit) message
	if err := cfg.Validate(); err == nil {
		t.Error("undersized buffer accepted")
	}
	if err := detailedConfig().Validate(); err != nil {
		t.Errorf("valid detailed config rejected: %v", err)
	}
}

func TestDetailedDeliversEverything(t *testing.T) {
	rec := &capture{}
	e, n, inbox := buildNet(t, detailedConfig(), nil, rec)
	rng := sim.NewRNG(3)
	const total = 500
	for i := 0; i < total; i++ {
		src := msg.NodeID(rng.Intn(16) + 1)
		dst := msg.NodeID(rng.Intn(16) + 1)
		typ := msg.GetS
		if i%3 == 0 {
			typ = msg.Data
		}
		n.Send(&msg.Message{Type: typ, Src: src, Dst: dst, Addr: msg.Addr(i)})
	}
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	delivered := 0
	for _, msgs := range inbox {
		delivered += len(msgs)
	}
	if delivered != total {
		t.Fatalf("delivered %d/%d", delivered, total)
	}
	// Every buffer must be empty again (no leaked credits).
	for key, b := range n.bufs {
		if b.used != 0 || len(b.waiters) != 0 {
			t.Fatalf("buffer %+v leaked: used=%d waiters=%d", key, b.used, len(b.waiters))
		}
	}
}

func TestDetailedFIFOPerClass(t *testing.T) {
	e, n, inbox := buildNet(t, detailedConfig(), nil, nil)
	for i := 0; i < 30; i++ {
		n.Send(&msg.Message{Type: msg.Data, Src: 1, Dst: 16, Addr: msg.Addr(i)})
	}
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	got := inbox[16]
	if len(got) != 30 {
		t.Fatalf("delivered %d/30", len(got))
	}
	for i, m := range got {
		if m.Addr != msg.Addr(i) {
			t.Fatalf("out of order at %d: %#x", i, m.Addr)
		}
	}
}

func TestDetailedBackpressureSlowsTraffic(t *testing.T) {
	// A long stream of data messages through a single path: with tiny
	// buffers the stream must take at least as long as with large ones.
	latency := func(bufFlits int) uint64 {
		cfg := detailedConfig()
		cfg.BufferFlits = bufFlits
		rec := &capture{}
		e, n, _ := buildNet(t, cfg, nil, rec)
		for i := 0; i < 50; i++ {
			n.Send(&msg.Message{Type: msg.Data, Src: 1, Dst: 16, Addr: msg.Addr(i)})
		}
		if err := e.Run(0); err != nil {
			t.Fatal(err)
		}
		return e.Now()
	}
	small, large := latency(5), latency(512)
	if small < large {
		t.Fatalf("smaller buffers finished earlier: %d vs %d", small, large)
	}
}

func TestDetailedCrossTrafficContention(t *testing.T) {
	// Two flows crossing the same column must interleave without loss or
	// deadlock even with minimal buffers.
	cfg := detailedConfig()
	cfg.BufferFlits = 5
	rec := &capture{}
	e, n, inbox := buildNet(t, cfg, nil, rec)
	for i := 0; i < 100; i++ {
		n.Send(&msg.Message{Type: msg.Data, Src: 1, Dst: 16, Addr: msg.Addr(i)})
		n.Send(&msg.Message{Type: msg.Data, Src: 4, Dst: 13, Addr: msg.Addr(1000 + i)})
	}
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(inbox[16]) != 100 || len(inbox[13]) != 100 {
		t.Fatalf("delivered %d/%d", len(inbox[16]), len(inbox[13]))
	}
}

func TestDetailedDropStillFreesBuffers(t *testing.T) {
	dropAll := func(*msg.Message) bool { return true }
	rec := &capture{}
	e, n, inbox := buildNet(t, detailedConfig(), dropAll, rec)
	for i := 0; i < 40; i++ {
		n.Send(&msg.Message{Type: msg.Data, Src: 1, Dst: 16, Addr: msg.Addr(i)})
	}
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(inbox[16]) != 0 || len(rec.dropped) != 40 {
		t.Fatalf("delivered=%d dropped=%d", len(inbox[16]), len(rec.dropped))
	}
	for key, b := range n.bufs {
		if b.used != 0 {
			t.Fatalf("buffer %+v leaked after drops: %d", key, b.used)
		}
	}
}
