//go:build !race

// The allocation pin is meaningless under the race detector: sync.Pool
// deliberately drops a random fraction of recycled items when -race is on,
// so allocs/op inflates nondeterministically. The pooling *correctness*
// tests (TestPoolingOffGoldenIdentity) still run under -race.

package repro

import "testing"

// TestFig3QuickAllocsPin pins the steady-state allocation count of the
// quick Figure-3 configuration with instrumentation off — the regression
// guard for the pooled hot path (messages, events, MSHR entries, timer
// callbacks, deferred completions). The baseline before pooling was
// ~130k allocs per run; the pooled path measures ~3k, dominated by
// per-run setup (workload streams, stats tables, map growth). The pin at
// 12000 leaves headroom for toolchain drift while still catching any
// reintroduced per-message or per-event allocation, which costs tens of
// thousands per run.
func TestFig3QuickAllocsPin(t *testing.T) {
	run := func() {
		cfg := benchConfig()
		cfg.Protocol = FtDirCMP
		if _, err := Run(cfg, "uniform"); err != nil {
			t.Fatal(err)
		}
	}
	// Warm the pools: first runs pay one-time allocations for pool
	// populations sized to the working set.
	run()
	run()
	const maxAllocs = 12000
	if n := testing.AllocsPerRun(3, run); n > maxAllocs {
		t.Errorf("quick Fig-3 run: %.0f allocs, want <= %d (pre-pooling baseline was ~130000)", n, maxAllocs)
	}
}
