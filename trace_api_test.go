package repro

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunTraceRoundTrip(t *testing.T) {
	cfg := testConfig()
	cfg.OpsPerCore = 150
	var buf bytes.Buffer
	if err := WriteTrace(cfg, "uniform", &buf); err != nil {
		t.Fatal(err)
	}
	exported := buf.String()

	// Replaying the exported trace must match running the workload
	// directly — same cycles, same traffic.
	direct, err := Run(cfg, "uniform")
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := RunTrace(cfg, "replay", strings.NewReader(exported))
	if err != nil {
		t.Fatal(err)
	}
	if direct.Cycles != replayed.Cycles || direct.Messages != replayed.Messages {
		t.Fatalf("replay diverged: cycles %d vs %d, messages %d vs %d",
			direct.Cycles, replayed.Cycles, direct.Messages, replayed.Messages)
	}
}

func TestRunTraceHandWritten(t *testing.T) {
	trace := `
# two cores ping-ponging one line
0 w 1
1 w 1
0 r 1
1 r 1
0 w 2
`
	res, err := RunTrace(testConfig(), "hand", strings.NewReader(trace))
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 5 {
		t.Fatalf("ops = %d, want 5", res.Ops)
	}
}

func TestRunTraceTooManyCores(t *testing.T) {
	trace := "9 r 1\n"
	if _, err := RunTrace(testConfig(), "big", strings.NewReader(trace)); err == nil {
		t.Fatal("trace with out-of-range core accepted")
	}
}

func TestRunTraceBadFormat(t *testing.T) {
	if _, err := RunTrace(testConfig(), "bad", strings.NewReader("zork\n")); err == nil {
		t.Fatal("malformed trace accepted")
	}
}
