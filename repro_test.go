package repro

import (
	"strings"
	"testing"
)

// testConfig shrinks the default system for fast tests.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.MeshWidth = 2
	cfg.MeshHeight = 2
	cfg.MemControllers = 2
	cfg.L1Size = 4 * 1024
	cfg.L2BankSize = 16 * 1024
	cfg.OpsPerCore = 200
	return cfg
}

func TestRunFaultFree(t *testing.T) {
	for _, p := range []Protocol{DirCMP, FtDirCMP} {
		cfg := testConfig()
		cfg.Protocol = p
		res, err := Run(cfg, "uniform")
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if res.Protocol != p.String() {
			t.Errorf("protocol = %q, want %q", res.Protocol, p)
		}
		if res.Cycles == 0 || res.Ops == 0 || res.Messages == 0 {
			t.Errorf("%v: empty result %+v", p, res)
		}
		if !strings.Contains(res.ReportText, p.String()) {
			t.Errorf("report missing protocol name: %q", res.ReportText)
		}
	}
}

func TestRunUnknownWorkload(t *testing.T) {
	if _, err := Run(testConfig(), "nope"); err == nil {
		t.Fatal("expected error for unknown workload")
	}
}

func TestCompareFaultFreeOverheadIsSmall(t *testing.T) {
	dir, ft, err := Compare(testConfig(), "uniform")
	if err != nil {
		t.Fatal(err)
	}
	// §4.2: "the execution time does not increase" (allow a small margin —
	// the ownership handshake adds traffic that can perturb timing).
	if ratio := ft.TimeOverheadVs(dir); ratio > 1.10 {
		t.Errorf("fault-free execution-time overhead %.3f > 1.10", ratio)
	}
	if ft.Messages <= dir.Messages {
		t.Error("FtDirCMP should send more messages (ownership acks)")
	}
	msgOver := ft.MessageOverheadVs(dir)
	byteOver := ft.ByteOverheadVs(dir)
	// Figure 4 shape: byte overhead is much smaller than message overhead
	// because the extra messages are small control acknowledgments.
	if byteOver >= msgOver {
		t.Errorf("byte overhead %.3f should be below message overhead %.3f", byteOver, msgOver)
	}
}

func TestFaultSweepDegradesGracefully(t *testing.T) {
	cfg := testConfig()
	results, err := FaultSweep(cfg, "uniform", []int{0, 500, 2000})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results", len(results))
	}
	if results[0].Dropped != 0 {
		t.Error("rate 0 dropped messages")
	}
	if results[2].Dropped == 0 {
		t.Error("rate 2000 dropped nothing")
	}
	if results[2].RequestsReissued == 0 && results[2].LostUnblockTimeouts == 0 {
		t.Error("no recovery activity under faults")
	}
}

func TestCheckRecoveryAllTypes(t *testing.T) {
	cfg := testConfig()
	cfg.OpsPerCore = 150
	for _, typ := range MessageTypes() {
		out, err := CheckRecovery(cfg, "uniform", typ, 3)
		if err != nil {
			t.Fatalf("%s: %v", typ, err)
		}
		if !out.Recovered {
			t.Errorf("%s: protocol did not recover: %v", typ, out.Err)
		}
	}
}

func TestWorkloadsListed(t *testing.T) {
	names := Workloads()
	if len(names) < 8 {
		t.Fatalf("expected >=8 workloads, got %v", names)
	}
	for _, n := range names {
		cfg := testConfig()
		cfg.OpsPerCore = 60
		if _, err := Run(cfg, n); err != nil {
			t.Errorf("workload %s: %v", n, err)
		}
	}
}

func TestDeterminism(t *testing.T) {
	cfg := testConfig()
	cfg.FaultRatePerMillion = 1000
	cfg.FaultSeed = 99
	a, err := Run(cfg, "uniform")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg, "uniform")
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.Messages != b.Messages || a.Dropped != b.Dropped {
		t.Errorf("runs differ: %d/%d/%d vs %d/%d/%d",
			a.Cycles, a.Messages, a.Dropped, b.Cycles, b.Messages, b.Dropped)
	}
}
