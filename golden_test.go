package repro

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files")

// goldenConfig is the fixed-seed faulty run the export golden files pin:
// small enough to be fast, faulty enough to exercise every recovery event
// kind.
func goldenConfig() Config {
	cfg := DefaultConfig()
	cfg.MeshWidth = 2
	cfg.MeshHeight = 2
	cfg.MemControllers = 2
	cfg.OpsPerCore = 40
	cfg.Seed = 7
	cfg.FaultRatePerMillion = 6000
	cfg.FaultSeed = 707
	cfg.RecordEvents = true
	return cfg
}

// TestGoldenEventExports pins the JSONL and Chrome trace wire formats
// byte-for-byte: a fixed-seed run must serialize identically across runs
// and machines. Regenerate with `go test -run TestGoldenEventExports
// -update-golden .` after an intentional schema change (and update
// docs/OBSERVABILITY.md to match).
func TestGoldenEventExports(t *testing.T) {
	res, err := Run(goldenConfig(), "uniform")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Events()) == 0 {
		t.Fatal("golden run recorded no events")
	}

	var jsonl, chrome bytes.Buffer
	if err := res.WriteEventsJSONL(&jsonl); err != nil {
		t.Fatal(err)
	}
	if err := res.WriteChromeTrace(&chrome); err != nil {
		t.Fatal(err)
	}

	// The Chrome export must be a well-formed JSON document (Perfetto
	// rejects anything else).
	var doc struct {
		DisplayTimeUnit string           `json:"displayTimeUnit"`
		TraceEvents     []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(chrome.Bytes(), &doc); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("chrome export has no trace events")
	}

	checkGolden(t, "events.jsonl", jsonl.Bytes())
	checkGolden(t, "events.chrome.json", chrome.Bytes())
}

// TestEventExportsDeterministic re-runs the golden configuration and
// requires byte-identical exports — the property that makes the event log
// usable as a regression oracle.
func TestEventExportsDeterministic(t *testing.T) {
	first, err := Run(goldenConfig(), "uniform")
	if err != nil {
		t.Fatal(err)
	}
	second, err := Run(goldenConfig(), "uniform")
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := first.WriteEventsJSONL(&a); err != nil {
		t.Fatal(err)
	}
	if err := second.WriteEventsJSONL(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("re-run at the same seed produced different JSONL")
	}
	a.Reset()
	b.Reset()
	if err := first.WriteChromeTrace(&a); err != nil {
		t.Fatal(err)
	}
	if err := second.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("re-run at the same seed produced different Chrome trace")
	}
}

// TestRecoveryMetricsOnResult checks the Result-level accounting: faulty
// runs report a recovery-latency distribution whose count equals the
// recovered faults; fault-free runs report all zeros.
func TestRecoveryMetricsOnResult(t *testing.T) {
	cfg := goldenConfig()
	res, err := Run(cfg, "uniform")
	if err != nil {
		t.Fatal(err)
	}
	if res.FaultsInjected == 0 {
		t.Fatal("golden config injected no faults")
	}
	if res.FaultsInjected != res.FaultsRecovered+res.FaultsUnattributed {
		t.Fatalf("injected %d != recovered %d + unattributed %d",
			res.FaultsInjected, res.FaultsRecovered, res.FaultsUnattributed)
	}
	if res.FaultsRecovered > 0 && res.RecoveryLatencyMax == 0 && res.RecoveryLatencyMean == 0 {
		t.Fatal("faults recovered but the latency distribution is empty")
	}
	if res.EventsByKind["fault.inject"] != res.FaultsInjected {
		t.Fatalf("EventsByKind[fault.inject]=%d != FaultsInjected=%d",
			res.EventsByKind["fault.inject"], res.FaultsInjected)
	}
	if res.EventsByKind["recover"] != res.FaultsRecovered {
		t.Fatalf("EventsByKind[recover]=%d != FaultsRecovered=%d",
			res.EventsByKind["recover"], res.FaultsRecovered)
	}

	cfg.FaultRatePerMillion = 0
	clean, err := Run(cfg, "uniform")
	if err != nil {
		t.Fatal(err)
	}
	if clean.FaultsInjected != 0 || clean.FaultsRecovered != 0 ||
		clean.RecoveryLatencyMean != 0 || clean.RecoveryLatencyMax != 0 {
		t.Fatalf("fault-free run reported recovery activity: %+v", clean.EventsByKind)
	}
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with -update-golden): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s differs from golden file (%d vs %d bytes); regenerate with -update-golden if the schema change is intentional",
			name, len(got), len(want))
	}
}
