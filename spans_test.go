package repro

import (
	"bytes"
	"testing"

	"repro/internal/fault"
	"repro/internal/msg"
	"repro/internal/span"
)

// spanConfig is the fixed-seed fault-free run the span golden files pin:
// the golden system with span recording on and AckO piggybacking off, so
// ownership handshakes travel as standalone messages that targeted drops
// can hit.
func spanConfig() Config {
	cfg := goldenConfig()
	cfg.FaultRatePerMillion = 0
	cfg.RecordEvents = false
	cfg.RecordSpans = true
	cfg.DisableAckOPiggyback = true
	return cfg
}

// checkAttribution asserts the span invariant the whole reconstruction
// rests on: every cycle of every span is attributed to a phase.
func checkAttribution(t *testing.T, res *Result) {
	t.Helper()
	spans := res.Spans()
	if len(spans) == 0 {
		t.Fatal("run reconstructed no spans")
	}
	for _, s := range spans {
		if s.Attributed() != s.Duration() {
			t.Fatalf("span %d (%s @%#x): attributed %d != duration %d",
				uint64(s.TID), s.Class, uint64(s.Addr), s.Attributed(), s.Duration())
		}
	}
	if b := res.Breakdown(); b == nil || b.Spans != len(spans) {
		t.Fatalf("breakdown missing or inconsistent: %+v vs %d spans", b, len(spans))
	}
}

// goldenSpan pins one span's JSONL rendering as a golden file.
func goldenSpan(t *testing.T, name string, s *span.Span) {
	t.Helper()
	var buf bytes.Buffer
	if err := span.WriteJSONL(&buf, []*span.Span{s}); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, name, buf.Bytes())
}

// TestGoldenSpanTrees pins the reconstructed span tree of a clean L1 GetX
// miss and of misses recovering from a dropped AckO and a dropped AckBD —
// the ownership-handshake faults of §3.2 — byte-for-byte. Regenerate with
// `go test -run TestGoldenSpanTrees -update-golden .` after an intentional
// schema change.
func TestGoldenSpanTrees(t *testing.T) {
	clean, err := Run(spanConfig(), "uniform")
	if err != nil {
		t.Fatal(err)
	}
	checkAttribution(t, clean)
	var getx *span.Span
	for _, s := range clean.Spans() {
		if s.Class == "l1.GetX" && s.Complete {
			getx = s
			break
		}
	}
	if getx == nil {
		t.Fatal("clean run has no complete l1.GetX span")
	}
	if getx.Timeouts != 0 || getx.Faults != 0 {
		t.Fatalf("clean GetX span saw recovery activity: %+v", getx)
	}
	goldenSpan(t, "span_clean_getx.json", getx)

	for _, tc := range []struct {
		name   string
		typ    msg.Type
		golden string
	}{
		{"lost-AckO", msg.AckO, "span_lost_acko.json"},
		{"lost-AckBD", msg.AckBD, "span_lost_ackbd.json"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			inj := fault.NewNthOfType(tc.typ, 1)
			res, err := RunWithInjector(spanConfig(), "uniform", inj)
			if err != nil {
				t.Fatal(err)
			}
			if !inj.Fired() {
				t.Fatalf("targeted %s drop never fired", tc.typ)
			}
			checkAttribution(t, res)
			var faulted *span.Span
			for _, s := range res.Spans() {
				if s.Faults > 0 {
					faulted = s
					break
				}
			}
			if faulted == nil {
				t.Fatalf("no span carries the dropped %s", tc.typ)
			}
			// The recovery must be visible in the tree: the detection
			// stall and the reissued handshake appear as child segments.
			if faulted.Timeouts == 0 {
				t.Fatalf("faulted span fired no timeout: %+v", faulted)
			}
			var stalled bool
			for _, seg := range faulted.Segments {
				if seg.Phase == span.PhaseStall {
					stalled = true
				}
			}
			if !stalled {
				t.Fatalf("faulted span has no stall segment: %+v", faulted.Segments)
			}
			goldenSpan(t, tc.golden, faulted)
		})
	}
}

// TestSpanRecordingDoesNotPerturb: span recording is pure observation — a
// faulty golden run with spans on reports the exact same simulation results
// (cycles, traffic, memory image) as with spans off.
func TestSpanRecordingDoesNotPerturb(t *testing.T) {
	off := goldenConfig()
	on := off
	on.RecordSpans = true
	a, err := Run(off, "uniform")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(on, "uniform")
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.Ops != b.Ops {
		t.Fatalf("cycles/ops diverged: %d/%d vs %d/%d", a.Cycles, a.Ops, b.Cycles, b.Ops)
	}
	if a.Messages != b.Messages || a.Dropped != b.Dropped {
		t.Fatalf("traffic diverged: %d/%d vs %d/%d", a.Messages, a.Dropped, b.Messages, b.Dropped)
	}
	if a.MemoryImageHash != b.MemoryImageHash {
		t.Fatalf("memory image diverged: %#x vs %#x", a.MemoryImageHash, b.MemoryImageHash)
	}
	if len(a.Spans()) != 0 {
		t.Fatal("spans recorded without RecordSpans")
	}
	checkAttribution(t, b)
}

// TestProfileQuick runs the latency profiler on the quick system and checks
// the acceptance bar: a complete phase breakdown for 100% of transactions
// on every run, and a per-class overhead table comparing the protocols.
func TestProfileQuick(t *testing.T) {
	cfg := goldenConfig()
	cfg.RecordEvents = false
	rep, err := Profile(cfg, "uniform")
	if err != nil {
		t.Fatal(err)
	}
	checkAttribution(t, rep.Dir)
	checkAttribution(t, rep.Ft)
	if rep.Faulty == nil {
		t.Fatal("profile of a faulty config has no faulty run")
	}
	checkAttribution(t, rep.Faulty)
	if len(rep.Overhead) == 0 || len(rep.FaultPenalty) == 0 {
		t.Fatal("profile reports no deltas")
	}
	if rep.Report() == "" {
		t.Fatal("empty profile report")
	}
}

// TestSpansIdenticalAcrossParallelism: the span export is part of the
// deterministic result surface — Profile at -j1 and -jN must produce
// byte-identical span JSONL for every run.
func TestSpansIdenticalAcrossParallelism(t *testing.T) {
	cfg := goldenConfig()
	cfg.RecordEvents = false
	serial := cfg
	serial.Parallelism = 1
	parallel := cfg
	parallel.Parallelism = 0
	a, err := Profile(serial, "uniform")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Profile(parallel, "uniform")
	if err != nil {
		t.Fatal(err)
	}
	for _, pair := range []struct {
		name string
		x, y *Result
	}{{"dir", a.Dir, b.Dir}, {"ft", a.Ft, b.Ft}, {"faulty", a.Faulty, b.Faulty}} {
		var bx, by bytes.Buffer
		if err := pair.x.WriteSpansJSONL(&bx); err != nil {
			t.Fatal(err)
		}
		if err := pair.y.WriteSpansJSONL(&by); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(bx.Bytes(), by.Bytes()) {
			t.Fatalf("%s spans differ across parallelism levels", pair.name)
		}
	}
	if a.Report() != b.Report() {
		t.Fatal("profile report differs across parallelism levels")
	}
}
