package repro

// Tests for the implemented extensions: the unordered-network mode the
// paper points to in §2, the CRC-based corruption failure model, and the
// AckO-piggybacking ablation.

import "testing"

func TestUnorderedNetworkFaultFree(t *testing.T) {
	for _, p := range []Protocol{DirCMP, FtDirCMP} {
		cfg := testConfig()
		cfg.Protocol = p
		cfg.UnorderedNetwork = true
		if _, err := Run(cfg, "uniform"); err != nil {
			t.Fatalf("%v on adaptive routing: %v", p, err)
		}
	}
}

func TestUnorderedNetworkUnderFaults(t *testing.T) {
	for _, rate := range []int{2000, 20000} {
		for seed := uint64(1); seed <= 3; seed++ {
			cfg := testConfig()
			cfg.UnorderedNetwork = true
			cfg.Seed = seed
			cfg.FaultRatePerMillion = rate
			cfg.FaultSeed = seed * 131
			res, err := Run(cfg, "uniform")
			if err != nil {
				t.Fatalf("rate=%d seed=%d: %v", rate, seed, err)
			}
			if rate > 0 && res.Dropped == 0 {
				t.Fatalf("rate=%d dropped nothing", rate)
			}
		}
	}
}

func TestUnorderedNetworkAllWorkloads(t *testing.T) {
	for _, w := range Workloads() {
		cfg := testConfig()
		cfg.UnorderedNetwork = true
		cfg.OpsPerCore = 120
		cfg.FaultRatePerMillion = 5000
		cfg.FaultSeed = 9
		if _, err := Run(cfg, w); err != nil {
			t.Errorf("%s: %v", w, err)
		}
	}
}

func TestCorruptionModeEquivalentToDrop(t *testing.T) {
	// The corruption realization must behave exactly like dropping: same
	// deterministic loss decisions, same completion, invariants intact.
	drop := testConfig()
	drop.FaultRatePerMillion = 3000
	drop.FaultSeed = 77
	corrupt := drop
	corrupt.CorruptInsteadOfDrop = true

	a, err := Run(drop, "uniform")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(corrupt, "uniform")
	if err != nil {
		t.Fatal(err)
	}
	if a.Dropped != b.Dropped || a.Cycles != b.Cycles {
		t.Fatalf("corruption mode diverged: dropped %d vs %d, cycles %d vs %d",
			a.Dropped, b.Dropped, a.Cycles, b.Cycles)
	}
}

func TestPiggybackAblationAddsMessages(t *testing.T) {
	on := testConfig()
	off := testConfig()
	off.DisableAckOPiggyback = true

	resOn, err := Run(on, "uniform")
	if err != nil {
		t.Fatal(err)
	}
	resOff, err := Run(off, "uniform")
	if err != nil {
		t.Fatal(err)
	}
	if resOff.PiggybackedAcksO != 0 {
		t.Fatalf("ablation still piggybacked %d AckO", resOff.PiggybackedAcksO)
	}
	if resOn.PiggybackedAcksO == 0 {
		t.Fatal("baseline never piggybacked")
	}
	if resOff.Messages <= resOn.Messages {
		t.Fatalf("standalone AckO should add messages: %d vs %d",
			resOff.Messages, resOn.Messages)
	}
	// The ablation adds one 8-byte message per formerly-piggybacked AckO.
	extra := resOff.Messages - resOn.Messages
	if extra < uint64(float64(resOn.PiggybackedAcksO)*0.8) {
		t.Fatalf("expected ~%d extra messages, got %d", resOn.PiggybackedAcksO, extra)
	}
}

func TestPiggybackAblationUnderFaults(t *testing.T) {
	cfg := testConfig()
	cfg.DisableAckOPiggyback = true
	cfg.FaultRatePerMillion = 5000
	cfg.FaultSeed = 3
	if _, err := Run(cfg, "migratory"); err != nil {
		t.Fatalf("ablated protocol broke under faults: %v", err)
	}
}

func TestDetailedNetworkFaultFree(t *testing.T) {
	for _, p := range []Protocol{DirCMP, FtDirCMP} {
		cfg := testConfig()
		cfg.Protocol = p
		cfg.DetailedNetwork = true
		if _, err := Run(cfg, "uniform"); err != nil {
			t.Fatalf("%v on detailed routers: %v", p, err)
		}
	}
}

func TestDetailedNetworkUnderFaults(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		cfg := testConfig()
		cfg.DetailedNetwork = true
		cfg.Seed = seed
		cfg.FaultRatePerMillion = 5000
		cfg.FaultSeed = seed * 17
		if _, err := Run(cfg, "hotspot"); err != nil {
			t.Fatalf("seed=%d: %v", seed, err)
		}
	}
}

func TestDetailedNetworkTinyBuffers(t *testing.T) {
	cfg := testConfig()
	cfg.DetailedNetwork = true
	cfg.RouterBufferFlits = 5 // exactly one data message
	cfg.OpsPerCore = 150
	res, err := Run(cfg, "hotspot")
	if err != nil {
		t.Fatal(err)
	}
	relaxed := cfg
	relaxed.RouterBufferFlits = 256
	res2, err := Run(relaxed, "hotspot")
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles < res2.Cycles {
		t.Fatalf("tiny buffers ran faster: %d vs %d cycles", res.Cycles, res2.Cycles)
	}
}

func TestDetailedRejectsUnordered(t *testing.T) {
	cfg := testConfig()
	cfg.DetailedNetwork = true
	cfg.UnorderedNetwork = true
	if _, err := Run(cfg, "uniform"); err == nil {
		t.Fatal("detailed+adaptive accepted (not deadlock-free)")
	}
}

func TestFigure4ShapeHoldsOnDetailedNetwork(t *testing.T) {
	// Cross-model validation: the paper's network-overhead result must not
	// be an artifact of the simple link model. On the detailed
	// (finite-buffer, credit-backpressure) routers the overhead ratios
	// must stay in the same bands.
	cfg := testConfig()
	cfg.DetailedNetwork = true
	dir, ft, err := Compare(cfg, "uniform")
	if err != nil {
		t.Fatal(err)
	}
	msgOver := ft.MessageOverheadVs(dir)
	byteOver := ft.ByteOverheadVs(dir)
	if msgOver < 1.1 || msgOver > 1.6 {
		t.Errorf("message overhead %.3f outside the expected band", msgOver)
	}
	if byteOver < 1.02 || byteOver > 1.25 {
		t.Errorf("byte overhead %.3f outside the expected band", byteOver)
	}
	if byteOver >= msgOver {
		t.Errorf("byte overhead %.3f not below message overhead %.3f", byteOver, msgOver)
	}
}

func TestTokenProtocolsViaFacade(t *testing.T) {
	for _, p := range []Protocol{TokenCMP, FtTokenCMP} {
		cfg := testConfig()
		cfg.Protocol = p
		res, err := Run(cfg, "uniform")
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if res.Protocol != p.String() || res.Ops == 0 {
			t.Fatalf("%v: bad result %+v", p, res)
		}
	}
}

func TestSection5ComparisonShape(t *testing.T) {
	// §5's qualitative claims, quantified: the token protocol broadcasts
	// every miss, so it moves substantially more messages than the
	// directory protocol; its serial table stays empty without faults.
	cfg := testConfig()
	dir, err := Run(cfg, "uniform")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Protocol = FtTokenCMP
	tok, err := Run(cfg, "uniform")
	if err != nil {
		t.Fatal(err)
	}
	if tok.Messages < dir.Messages*5/4 {
		t.Errorf("token protocol should broadcast: %d vs %d messages", tok.Messages, dir.Messages)
	}
	if tok.TokenSerialPeak != 0 || tok.TokenRecreations != 0 {
		t.Errorf("fault-free serial table/recreations: %d/%d", tok.TokenSerialPeak, tok.TokenRecreations)
	}
	// Under faults the serial table populates — the §5 hardware-cost point.
	cfg.FaultRatePerMillion = 10000
	cfg.FaultSeed = 9
	tokF, err := Run(cfg, "uniform")
	if err != nil {
		t.Fatal(err)
	}
	if tokF.TokenRecreations == 0 || tokF.TokenSerialPeak == 0 {
		t.Errorf("faults should force recreations (%d) and serial entries (%d)",
			tokF.TokenRecreations, tokF.TokenSerialPeak)
	}
}

func TestTokenProtocolsOnAlternativeNetworks(t *testing.T) {
	// Token coherence never relied on point-to-point ordering (requests
	// are broadcast and retried), so it must work on the adaptive mesh;
	// and on the detailed routers like everything else.
	for _, p := range []Protocol{TokenCMP, FtTokenCMP} {
		cfg := testConfig()
		cfg.Protocol = p
		cfg.OpsPerCore = 150
		cfg.UnorderedNetwork = true
		if _, err := Run(cfg, "uniform"); err != nil {
			t.Errorf("%v on adaptive routing: %v", p, err)
		}
		cfg = testConfig()
		cfg.Protocol = p
		cfg.OpsPerCore = 150
		cfg.DetailedNetwork = true
		if _, err := Run(cfg, "uniform"); err != nil {
			t.Errorf("%v on detailed routers: %v", p, err)
		}
	}
	// And with loss on top of reordering for the fault-tolerant one.
	cfg := testConfig()
	cfg.Protocol = FtTokenCMP
	cfg.OpsPerCore = 150
	cfg.UnorderedNetwork = true
	cfg.FaultRatePerMillion = 5000
	cfg.FaultSeed = 4
	if _, err := Run(cfg, "uniform"); err != nil {
		t.Errorf("FtTokenCMP with loss + reordering: %v", err)
	}
}
