package repro

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/runner"
	"repro/internal/span"
)

// ProfileReport is the output of Profile: per-miss-class latency attribution
// under both protocols, the per-miss fault-tolerance overhead, and (when the
// configuration injects faults) the under-fault penalty. All three runs
// carry full span data (Result.Spans, Result.Breakdown).
type ProfileReport struct {
	Workload string

	// Dir and Ft are the fault-free DirCMP and FtDirCMP runs.
	Dir, Ft *Result
	// Faulty is the FtDirCMP run at the configuration's fault rate; nil
	// when the configuration injects no faults.
	Faulty *Result

	// Overhead compares fault-free FtDirCMP against DirCMP per miss class:
	// the cycles fault tolerance costs each miss, split by phase (the
	// paper's §5.1 claim is that this is negligible).
	Overhead []span.ClassDelta
	// FaultPenalty compares the faulty FtDirCMP run against the fault-free
	// one; nil without faults.
	FaultPenalty []span.ClassDelta
}

// Profile runs the latency-attribution comparison on a workload: DirCMP and
// FtDirCMP fault-free, plus FtDirCMP under the configured fault rate when
// cfg.FaultRatePerMillion > 0, all with span recording on. The runs execute
// concurrently under cfg.Parallelism; the report is identical at every
// parallelism level.
func Profile(cfg Config, workloadName string) (*ProfileReport, error) {
	return ProfileContext(context.Background(), cfg, workloadName)
}

// ProfileContext is Profile under a context; cancellation aborts the runs
// and the error wraps ctx's cause.
func ProfileContext(ctx context.Context, cfg Config, workloadName string) (*ProfileReport, error) {
	configs := []Config{cfg, cfg}
	configs[0].Protocol = DirCMP
	configs[1].Protocol = FtDirCMP
	for i := range configs {
		configs[i].FaultRatePerMillion = 0
		configs[i].RecordSpans = true
	}
	if cfg.FaultRatePerMillion > 0 {
		faulty := cfg
		faulty.Protocol = FtDirCMP
		faulty.RecordSpans = true
		configs = append(configs, faulty)
	}
	results, err := runner.MapContext(ctx, cfg.Parallelism, len(configs), func(ctx context.Context, i int) (*Result, error) {
		res, err := RunContext(ctx, configs[i], workloadName)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", configs[i].Protocol, err)
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	rep := &ProfileReport{
		Workload: workloadName,
		Dir:      results[0],
		Ft:       results[1],
		Overhead: results[1].Breakdown().DeltaVs(results[0].Breakdown()),
	}
	if len(results) > 2 {
		rep.Faulty = results[2]
		rep.Faulty.FaultRatePerMillion = cfg.FaultRatePerMillion
		rep.FaultPenalty = rep.Faulty.Breakdown().DeltaVs(rep.Ft.Breakdown())
	}
	return rep, nil
}

// Report renders the profile as a human-readable table: one row per miss
// class with the per-phase mean deltas. Deterministic for a deterministic
// configuration (golden-tested via ftexp).
func (p *ProfileReport) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "latency attribution: %s\n", p.Workload)
	fmt.Fprintf(&b, "  fault-free per-miss overhead (FtDirCMP vs DirCMP):\n")
	writeDeltaTable(&b, p.Overhead)
	if p.Faulty != nil {
		fmt.Fprintf(&b, "  under-fault penalty (FtDirCMP @%d/M vs fault-free):\n",
			p.Faulty.FaultRatePerMillion)
		writeDeltaTable(&b, p.FaultPenalty)
	}
	return b.String()
}

// writeDeltaTable renders one delta set: class, span counts, means, total
// delta, and the per-phase split in taxonomy order.
func writeDeltaTable(b *strings.Builder, deltas []span.ClassDelta) {
	phases := span.AllPhases()
	widths := make([]int, len(phases))
	fmt.Fprintf(b, "    %-10s %7s %7s %9s %9s %8s", "class", "base_n", "n", "base", "mean", "delta")
	for i, ph := range phases {
		widths[i] = len("d_" + ph)
		if widths[i] < 9 {
			widths[i] = 9
		}
		fmt.Fprintf(b, " %*s", widths[i], "d_"+ph)
	}
	b.WriteByte('\n')
	for _, d := range deltas {
		fmt.Fprintf(b, "    %-10s %7d %7d %9.1f %9.1f %+8.1f",
			d.Class, d.BaseCount, d.Count, d.BaseMean, d.Mean, d.Delta)
		for i, ph := range phases {
			fmt.Fprintf(b, " %+*.1f", widths[i], d.PhaseDelta[ph])
		}
		b.WriteByte('\n')
	}
}
