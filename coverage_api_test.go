package repro

import (
	"bytes"
	"testing"

	"repro/internal/fault"
	"repro/internal/msg"
)

// quickCoverageConfig is the exhaustive-campaign configuration `make
// coverage-quick` runs: small enough that the full single-loss fault space
// (every injectable message of the run) is a few hundred slots.
func quickCoverageConfig() Config {
	cfg := DefaultConfig()
	cfg.MeshWidth = 2
	cfg.MeshHeight = 2
	cfg.MemControllers = 2
	cfg.L1Size = 8 * 1024
	cfg.L2BankSize = 32 * 1024
	cfg.OpsPerCore = 20
	return cfg
}

// TestCoverageExhaustiveQuick is the headline robustness claim: FtDirCMP
// recovers from every single possible lost message of the quick workload —
// every run terminates, passes the coherence and data-value checks, and
// reproduces the fault-free memory image — while DirCMP recovers from none.
func TestCoverageExhaustiveQuick(t *testing.T) {
	rep, err := Coverage(quickCoverageConfig(), "uniform", CoverageOptions{
		DoubleFaultSamples: 8,
		Seed:               1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.FullCoverage() {
		t.Fatalf("FtDirCMP coverage incomplete: %d/%d recovered, failures: %v",
			rep.Recovered, rep.SlotsTested, rep.Failures)
	}
	if rep.TotalSlots < 100 {
		t.Fatalf("suspiciously small fault space: %d slots", rep.TotalSlots)
	}
	for _, df := range rep.DoubleFaults {
		if !df.Recovered {
			t.Errorf("double fault not recovered: %+v", df)
		}
	}

	cfg := quickCoverageConfig()
	cfg.Protocol = DirCMP
	cfg.CycleLimit = 5_000_000
	drep, err := Coverage(cfg, "uniform", CoverageOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if drep.Recovered != 0 {
		t.Fatalf("DirCMP recovered %d slots; the unprotected baseline must not survive any loss",
			drep.Recovered)
	}
	if drep.TotalFailures != drep.SlotsTested {
		t.Fatalf("DirCMP failures %d != slots tested %d", drep.TotalFailures, drep.SlotsTested)
	}
}

// TestGoldenCoverageReport pins the quick coverage report byte-for-byte —
// table and JSON — and requires it to be identical at every parallelism
// level. Regenerate with `go test -run TestGoldenCoverageReport
// -update-golden .` after an intentional protocol or schema change.
func TestGoldenCoverageReport(t *testing.T) {
	render := func(parallelism int) ([]byte, []byte) {
		cfg := quickCoverageConfig()
		cfg.Parallelism = parallelism
		rep, err := Coverage(cfg, "uniform", CoverageOptions{
			DoubleFaultSamples: 8,
			Seed:               1,
		})
		if err != nil {
			t.Fatal(err)
		}
		var js bytes.Buffer
		if err := rep.WriteJSON(&js); err != nil {
			t.Fatal(err)
		}
		return []byte(rep.Table()), js.Bytes()
	}
	tblSerial, jsSerial := render(1)
	tblAll, jsAll := render(0)
	if !bytes.Equal(tblSerial, tblAll) {
		t.Fatalf("coverage table differs between -j 1 and -j 0:\n%s\nvs\n%s", tblSerial, tblAll)
	}
	if !bytes.Equal(jsSerial, jsAll) {
		t.Fatal("coverage JSON differs between -j 1 and -j 0")
	}
	checkGolden(t, "coverage.txt", tblSerial)
	checkGolden(t, "coverage.json", jsSerial)
}

// TestDoubleFaultReissueRegression pins the paper's hardest single-line
// scenario: a request is lost, the lost-request timeout fires, the request
// is reissued — and the reissue is lost too. FtDirCMP must detect and
// reissue again, and the run must pass every check. Both drops hit the same
// line, so the result attributes one fault window per injection on that
// line: two injections, two recoveries.
func TestDoubleFaultReissueRegression(t *testing.T) {
	inj := fault.NewNthOfType(msg.GetX, 3).AlsoDropReissue()
	res, err := RunWithInjector(quickCoverageConfig(), "uniform", inj)
	if err != nil {
		t.Fatalf("double fault (GetX #3 + its reissue) not survived: %v", err)
	}
	if !inj.Fired() {
		t.Fatal("first drop never fired")
	}
	if !inj.SecondFired() {
		t.Fatal("the reissue was never dropped — the scenario did not happen")
	}
	if got := inj.Dropped(); got != 2 {
		t.Fatalf("injector dropped %d messages, want 2", got)
	}
	if res.Dropped != 2 {
		t.Fatalf("network counted %d drops, want 2", res.Dropped)
	}
	if res.FaultsInjected != 2 {
		t.Fatalf("FaultsInjected = %d, want 2 (one per injection)", res.FaultsInjected)
	}
	if res.FaultsRecovered != 2 {
		t.Fatalf("FaultsRecovered = %d, want 2 (both windows on the faulted line closed)",
			res.FaultsRecovered)
	}
	if res.RequestsReissued < 2 {
		t.Fatalf("RequestsReissued = %d, want >= 2 (the reissue itself was reissued)",
			res.RequestsReissued)
	}
	// The memory image must match a fault-free run of the same workload.
	clean, err := Run(quickCoverageConfig(), "uniform")
	if err != nil {
		t.Fatal(err)
	}
	if res.MemoryImageHash != clean.MemoryImageHash {
		t.Fatalf("memory image diverged: %#x != fault-free %#x",
			res.MemoryImageHash, clean.MemoryImageHash)
	}
}
