package repro_test

// Serving-layer documentation pins. These live in the external test
// package because they exercise internal/serve (which itself imports the
// root package) against docs/SERVICE.md and docs/OPERATIONS.md.

import (
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"regexp"
	"strings"
	"testing"

	"repro/internal/serve"
)

// metricTokens extracts every metric name with the given prefix that a
// document mentions.
func metricTokens(doc, prefix string) []string {
	re := regexp.MustCompile(prefix + `_[a-z_]+`)
	seen := make(map[string]bool)
	var out []string
	for _, tok := range re.FindAllString(doc, -1) {
		if !seen[tok] {
			seen[tok] = true
			out = append(out, tok)
		}
	}
	return out
}

// TestDocsServiceMatchesCode keeps docs/SERVICE.md tied to the serving
// layer: the flags and mechanisms it names must exist, and every
// ftserve_/ftrouter_ metric it documents must actually be emitted by a
// live /metrics endpoint (scraped, not string-matched against the code).
func TestDocsServiceMatchesCode(t *testing.T) {
	data, err := os.ReadFile("docs/SERVICE.md")
	if err != nil {
		t.Fatal(err)
	}
	doc := string(data)
	for _, want := range []string{
		"-cache-dir", "-cache-max-bytes", "-shard", "-router",
		"421", ".corrupt", "ShardOf", "Retry-After",
		"ftload", "load-check", "BENCH_PR9.json",
		"-log-level", "Ftserve-Trace-Id", "Ftserve-Request-Id", "Ftserve-Proxy-Start",
		"format=service", "/v1/status", "/debug/pprof",
		"text/plain; version=0.0.4", "backoff_wait",
	} {
		if !strings.Contains(doc, want) {
			t.Errorf("docs/SERVICE.md does not mention %q", want)
		}
	}

	srv, err := serve.New(serve.Options{Workers: 1, QueueDepth: 4, CacheDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	backend := httptest.NewServer(srv.Handler())
	defer backend.Close()
	rt, err := serve.NewRouter([]string{backend.URL})
	if err != nil {
		t.Fatal(err)
	}
	router := httptest.NewServer(rt.Handler())
	defer router.Close()

	scrape := func(base string) string {
		resp, err := http.Get(base + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		return string(raw)
	}
	backendMetrics, routerMetrics := scrape(backend.URL), scrape(router.URL)
	for _, name := range metricTokens(doc, "ftserve") {
		if !strings.Contains(backendMetrics, name) {
			t.Errorf("docs/SERVICE.md documents %q, which /metrics does not emit", name)
		}
	}
	tokens := metricTokens(doc, "ftrouter")
	if len(tokens) == 0 {
		t.Error("docs/SERVICE.md documents no ftrouter_ metrics")
	}
	for _, name := range tokens {
		if !strings.Contains(routerMetrics, name) {
			t.Errorf("docs/SERVICE.md documents %q, which the router's /metrics does not emit", name)
		}
	}
}

// TestDocsOperationsMatchesCode keeps docs/OPERATIONS.md honest: the
// flags, endpoints, report fields, and artifacts its runbooks reference
// must exist under those names.
func TestDocsOperationsMatchesCode(t *testing.T) {
	data, err := os.ReadFile("docs/OPERATIONS.md")
	if err != nil {
		t.Fatal(err)
	}
	doc := string(data)
	for _, want := range []string{
		"-cache-dir", "-cache-max-bytes", "-shard 0/3", "-router",
		"-shutdown-timeout", "/healthz", "ok router shards=3",
		"ftserve_rejected_total", "ftserve_cache_misses_total",
		"ftserve_cache_disk_hits_total", "ftserve_cache_disk_quarantined_total",
		"durability_test.go", ".json.corrupt",
		"cmd/ftload", "throughput_rps", "rate_429", "p99_us", "unique_jobs",
		"BENCH_PR9.json", "make load-check", "make bench",
		"/v1/status", "/debug/pprof", "backoff_wait",
		"Ftserve-Request-Id", "-log-level", "fttrace",
	} {
		if !strings.Contains(doc, want) {
			t.Errorf("docs/OPERATIONS.md does not mention %q", want)
		}
	}
	// The bench record the runbook points at must exist in the snapshot.
	bench, err := os.ReadFile("BENCH_PR9.json")
	if err != nil {
		t.Fatalf("BENCH_PR9.json missing: %v", err)
	}
	record := "BenchmarkFtload/clients=1000/shards=2"
	if !strings.Contains(doc, record) {
		t.Errorf("docs/OPERATIONS.md does not name the checked-in capacity record %q", record)
	}
	if !strings.Contains(string(bench), record) {
		t.Errorf("BENCH_PR9.json does not contain %q", record)
	}
}

// TestDocsObservabilityServicePhases pins the service-span taxonomy in
// docs/OBSERVABILITY.md to serve.ServicePhases(): every phase the code
// can emit must appear in the doc's taxonomy table, and the doc must not
// invent phases the code never records.
func TestDocsObservabilityServicePhases(t *testing.T) {
	data, err := os.ReadFile("docs/OBSERVABILITY.md")
	if err != nil {
		t.Fatal(err)
	}
	doc := string(data)
	phases := serve.ServicePhases()
	if len(phases) == 0 {
		t.Fatal("serve.ServicePhases() returned no phases")
	}
	for _, phase := range phases {
		if !strings.Contains(doc, "`"+phase+"`") {
			t.Errorf("docs/OBSERVABILITY.md taxonomy does not mention phase %q", phase)
		}
	}
	// The doc's own claim about where the pin lives must stay true.
	if !strings.Contains(doc, "ServicePhases()") {
		t.Error("docs/OBSERVABILITY.md does not reference serve.ServicePhases()")
	}
}
