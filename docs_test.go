package repro

// Documentation checks, run by `make docs-check` (and the normal test
// suite): markdown links must resolve, PROTOCOL.md's message tables must
// match the code's single source of truth, and docs/OBSERVABILITY.md must
// name every event the recorder can emit.

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/msg"
	"repro/internal/obs"
	"repro/internal/span"
	"repro/internal/trace"
)

// markdownFiles returns every tracked *.md in the repo root and docs/.
func markdownFiles(t *testing.T) []string {
	t.Helper()
	var files []string
	for _, glob := range []string{"*.md", "docs/*.md"} {
		m, err := filepath.Glob(glob)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, m...)
	}
	if len(files) == 0 {
		t.Fatal("no markdown files found")
	}
	return files
}

var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// TestDocsMarkdownLinks checks that every relative link in the markdown
// documentation points at a file that exists.
func TestDocsMarkdownLinks(t *testing.T) {
	for _, file := range markdownFiles(t) {
		data, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
				continue
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(file), target)
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: broken link %q (%s does not exist)", file, m[1], resolved)
			}
		}
	}
}

// TestDocsProtocolTablesMatchDescribe diffs PROTOCOL.md §0's message-type
// tables against internal/trace.Describe, the single source of truth for
// the paper's Tables 1-2. Every message type must appear as exactly
//
//	| `Type` | Description |
//
// and no table row may carry a stale description.
func TestDocsProtocolTablesMatchDescribe(t *testing.T) {
	data, err := os.ReadFile("PROTOCOL.md")
	if err != nil {
		t.Fatal(err)
	}
	doc := string(data)

	types := append(msg.BaseTypes(), msg.FtTypes()...)
	for _, typ := range types {
		want := fmt.Sprintf("| `%s` | %s |", typ, trace.Describe(typ))
		if !strings.Contains(doc, want) {
			t.Errorf("PROTOCOL.md is missing or has drifted from the canonical row:\n%s", want)
		}
	}

	// No stale rows: any table row naming a known message type must be
	// the canonical one.
	known := make(map[string]msg.Type, len(types))
	for _, typ := range types {
		known[typ.String()] = typ
	}
	// Two-column rows only: protocol transition tables elsewhere in the
	// document also start with a backticked type but have more columns.
	rowRe := regexp.MustCompile("(?m)^\\| `([A-Za-z]+)` \\| ([^|]+) \\|$")
	for _, m := range rowRe.FindAllStringSubmatch(doc, -1) {
		typ, ok := known[m[1]]
		if !ok {
			continue
		}
		if m[2] != trace.Describe(typ) {
			t.Errorf("PROTOCOL.md row for %s says %q, code says %q (fix the doc or trace.Describe)",
				m[1], m[2], trace.Describe(typ))
		}
	}
}

// TestDocsObservabilityCoversAllKinds requires docs/OBSERVABILITY.md to
// name every event kind and timeout kind the recorder can emit, and every
// kind a real faulty run actually emits.
func TestDocsObservabilityCoversAllKinds(t *testing.T) {
	data, err := os.ReadFile("docs/OBSERVABILITY.md")
	if err != nil {
		t.Fatal(err)
	}
	doc := string(data)
	for _, k := range obs.AllKinds() {
		if !strings.Contains(doc, "`"+k.String()+"`") {
			t.Errorf("docs/OBSERVABILITY.md does not document event kind `%s`", k)
		}
	}
	for _, k := range obs.AllTimeoutKinds() {
		if !strings.Contains(doc, "`"+k.String()+"`") {
			t.Errorf("docs/OBSERVABILITY.md does not document timeout kind `%s`", k)
		}
	}

	res, err := Run(goldenConfig(), "uniform")
	if err != nil {
		t.Fatal(err)
	}
	for kind := range res.EventsByKind {
		if !strings.Contains(doc, "`"+kind+"`") {
			t.Errorf("run emitted event kind %q that docs/OBSERVABILITY.md does not document", kind)
		}
	}
}

// TestDocsPerformanceMatchesCode keeps docs/PERFORMANCE.md tied to the
// mechanisms it documents: the bypass knobs and the pinning tests it names
// must exist under those names.
func TestDocsPerformanceMatchesCode(t *testing.T) {
	data, err := os.ReadFile("docs/PERFORMANCE.md")
	if err != nil {
		t.Fatal(err)
	}
	doc := string(data)
	for _, want := range []string{
		"REPRO_NOPOOL", "msg.SetPooling", "msg.NewMessage", "msg.Recycle",
		"StartCall", "proto.DeferResult", "msg.EncodeAppend",
		"TestPoolingOffGoldenIdentity", "TestFig3QuickAllocsPin",
		"TestDisabledInstrumentationZeroAlloc",
	} {
		if !strings.Contains(doc, want) {
			t.Errorf("docs/PERFORMANCE.md does not mention %q", want)
		}
	}
}

// TestDocsModelcheckMatchesCode keeps docs/MODELCHECK.md tied to the
// mechanisms and entry points it documents: the API names, CLI modes,
// violation kinds, pinned artifacts, and make target it cites must exist
// under those names.
func TestDocsModelcheckMatchesCode(t *testing.T) {
	data, err := os.ReadFile("docs/MODELCHECK.md")
	if err != nil {
		t.Fatal(err)
	}
	doc := string(data)
	for _, want := range []string{
		"mc.Explore", "mc.Replay", "sim.ScheduleChoiceAt", "sim.Chooser",
		"system.StateFingerprint()", "msg.Fingerprint", "coverage.Recovered",
		"repro.InterleaveGate", "repro.InterleaveWorkload", "repro.WorkloadExtras()",
		"ftcheck -interleave", "fttrace -replay", "ftload -class interleave",
		"make mc-check", "testdata/interleave.{txt,json}",
		"TestGoldenInterleaveReport", "BenchmarkInterleaveExploration",
		"`deadlock`", "`verdict`", "`cycle-limit`", "`handoff`",
	} {
		if !strings.Contains(doc, want) {
			t.Errorf("docs/MODELCHECK.md does not mention %q", want)
		}
	}

	// The violation kinds the doc names are the ones the checker emits:
	// keep the list in lockstep with a real counterexample.
	rep, err := Interleave(quickInterleaveConfig(), InterleaveWorkload, InterleaveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Exhausted {
		t.Fatalf("quick FtDirCMP reordering exploration no longer exhausts: %+v", rep)
	}
}

// TestDocsSpanPhaseTable pins docs/OBSERVABILITY.md's phase-taxonomy table
// against span.AllPhases(): every phase must have a table row, in the
// canonical order, and the table must not name phases the code does not
// have.
func TestDocsSpanPhaseTable(t *testing.T) {
	data, err := os.ReadFile("docs/OBSERVABILITY.md")
	if err != nil {
		t.Fatal(err)
	}
	doc := string(data)

	prev := -1
	for _, ph := range span.AllPhases() {
		row := "| `" + ph + "` |"
		i := strings.Index(doc, row)
		if i < 0 {
			t.Errorf("docs/OBSERVABILITY.md has no phase-table row for %q (want %q)", ph, row)
			continue
		}
		if i < prev {
			t.Errorf("docs/OBSERVABILITY.md phase row for %q is out of canonical order (want span.AllPhases() order)", ph)
		}
		prev = i
	}

	// No stale rows within the taxonomy section: every table row there
	// must name a real phase.
	_, section, ok := strings.Cut(doc, "### Phase taxonomy")
	if !ok {
		t.Fatal("docs/OBSERVABILITY.md has no '### Phase taxonomy' section")
	}
	if next := strings.Index(section, "\n### "); next >= 0 {
		section = section[:next]
	}
	known := make(map[string]bool)
	for _, ph := range span.AllPhases() {
		known[ph] = true
	}
	rowRe := regexp.MustCompile("(?m)^\\| `([a-z0-9_]+)` \\|")
	for _, m := range rowRe.FindAllStringSubmatch(section, -1) {
		if !known[m[1]] {
			t.Errorf("docs/OBSERVABILITY.md phase table names %q, which span.AllPhases() does not have", m[1])
		}
	}
}
